"""File hosts: encrypted replica storage with SIS coalescing."""

import random

import pytest

from repro.core.convergent import convergent_encrypt
from repro.farsite.file_host import FileHost

DOCUMENT = b"shared document body " * 50


@pytest.fixture
def host():
    return FileHost(machine_identifier=0xABC)


def encrypt_for(user_name, user, rng_seed=0):
    return convergent_encrypt(
        DOCUMENT, {user_name: user.public_key}, rng=random.Random(rng_seed)
    )


class TestStorage:
    def test_store_and_fetch(self, host, alice):
        ciphertext = encrypt_for("alice", alice)
        assert not host.store_replica("f1", ciphertext)
        fetched = host.fetch_replica("f1")
        assert fetched.data == ciphertext.data
        assert dict(fetched.metadata) == dict(ciphertext.metadata)

    def test_cross_user_replicas_coalesce(self, host, alice, bob):
        """The point of convergent encryption: different users' encryptions
        of the same plaintext coalesce on an untrusted host."""
        host.store_replica("alice-file", encrypt_for("alice", alice, 1))
        coalesced = host.store_replica("bob-file", encrypt_for("bob", bob, 2))
        assert coalesced
        assert host.sis.blob_count() == 1
        assert host.reclaimed_bytes == len(DOCUMENT)

    def test_metadata_kept_per_replica(self, host, alice, bob):
        host.store_replica("alice-file", encrypt_for("alice", alice, 1))
        host.store_replica("bob-file", encrypt_for("bob", bob, 2))
        assert "alice" in host.fetch_replica("alice-file").metadata
        assert "bob" in host.fetch_replica("bob-file").metadata

    def test_drop_replica(self, host, alice):
        host.store_replica("f1", encrypt_for("alice", alice))
        host.drop_replica("f1")
        assert len(host) == 0
        with pytest.raises(KeyError):
            host.fetch_replica("f1")

    def test_add_reader_key(self, host, alice, bob):
        from repro.core.convergent import convergent_decrypt, reencrypt_key_for

        host.store_replica("f1", encrypt_for("alice", alice))
        host.add_reader_key("f1", "bob", reencrypt_key_for(DOCUMENT, bob.public_key))
        assert convergent_decrypt(host.fetch_replica("f1"), bob) == DOCUMENT


class TestDfcHooks:
    def test_fingerprints_cover_all_replicas(self, host, alice, bob):
        host.store_replica("a", encrypt_for("alice", alice, 1))
        host.store_replica("b", encrypt_for("bob", bob, 2))
        fps = host.fingerprints()
        assert len(fps) == 2
        assert fps[0] == fps[1]  # identical content -> identical fingerprint

    def test_holds_fingerprint(self, host, alice):
        host.store_replica("a", encrypt_for("alice", alice))
        fp = host.fingerprints()[0]
        assert host.holds_fingerprint(fp) == ["a"]
