"""The Single-Instance Store: coalescing with separate-file semantics."""

import pytest

from repro.farsite.sis import NoSuchFileError, SingleInstanceStore


class TestCoalescing:
    def test_identical_content_shares_one_blob(self):
        sis = SingleInstanceStore()
        assert not sis.store("a", b"same bytes")
        assert sis.store("b", b"same bytes")  # coalesced
        assert sis.blob_count() == 1
        assert len(sis) == 2
        assert sis.link_count("a") == 2

    def test_different_content_does_not_coalesce(self):
        sis = SingleInstanceStore()
        sis.store("a", b"one")
        assert not sis.store("b", b"two")
        assert sis.blob_count() == 2

    def test_space_accounting(self):
        sis = SingleInstanceStore()
        payload = b"x" * 1000
        for name in ("a", "b", "c"):
            sis.store(name, payload)
        stats = sis.stats()
        assert stats.logical_bytes == 3000
        assert stats.physical_bytes == 1000
        assert stats.reclaimed_bytes == 2000


class TestSeparateFileSemantics:
    def test_reads_are_independent(self):
        sis = SingleInstanceStore()
        sis.store("a", b"shared")
        sis.store("b", b"shared")
        assert sis.read("a") == sis.read("b") == b"shared"

    def test_copy_on_write_preserves_other_links(self):
        sis = SingleInstanceStore()
        sis.store("a", b"shared content")
        sis.store("b", b"shared content")
        sis.write("a", b"a's new content")
        assert sis.read("a") == b"a's new content"
        assert sis.read("b") == b"shared content"
        assert sis.blob_count() == 2

    def test_rewriting_back_recoalesces(self):
        sis = SingleInstanceStore()
        sis.store("a", b"shared")
        sis.store("b", b"shared")
        sis.write("a", b"diverged")
        sis.write("a", b"shared")
        assert sis.blob_count() == 1
        assert sis.link_count("b") == 2

    def test_delete_releases_blob_only_when_last(self):
        sis = SingleInstanceStore()
        sis.store("a", b"shared")
        sis.store("b", b"shared")
        sis.delete("a")
        assert sis.read("b") == b"shared"
        assert sis.blob_count() == 1
        sis.delete("b")
        assert sis.blob_count() == 0

    def test_restore_same_name_replaces(self):
        sis = SingleInstanceStore()
        sis.store("a", b"v1")
        sis.store("a", b"v2")
        assert sis.read("a") == b"v2"
        assert sis.blob_count() == 1
        assert len(sis) == 1


class TestErrors:
    def test_read_missing(self):
        with pytest.raises(NoSuchFileError):
            SingleInstanceStore().read("ghost")

    def test_write_missing(self):
        with pytest.raises(NoSuchFileError):
            SingleInstanceStore().write("ghost", b"x")

    def test_delete_missing(self):
        with pytest.raises(NoSuchFileError):
            SingleInstanceStore().delete("ghost")

    def test_contains(self):
        sis = SingleInstanceStore()
        sis.store("a", b"x")
        assert "a" in sis and "b" not in sis
