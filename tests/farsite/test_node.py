"""The full Farsite deployment: nodes, groups, clients, and the DFC cycle."""

import pytest

from repro.farsite.node import FarsiteDeployment

DOCUMENT = b"shared workgroup document body " * 200  # ~6 KB
OTHER = b"another popular file, different bytes " * 150


@pytest.fixture(scope="module")
def deployment():
    return FarsiteDeployment(machine_count=16, replication_factor=2, seed=3)


@pytest.fixture(scope="module")
def cycled(deployment):
    """Three users write the same two documents; one DFC cycle runs."""
    users = [deployment.create_user(name) for name in ("ana", "ben", "cho")]
    receipts = []
    for user in users:
        client = deployment.client_for(user)
        receipts.append(client.write_file(f"/home/{user.name}/doc.txt", DOCUMENT))
        receipts.append(client.write_file(f"/home/{user.name}/tool.bin", OTHER))
    report = deployment.run_dfc_cycle()
    return deployment, users, receipts, report


class TestAssembly:
    def test_every_node_is_leaf_and_host(self, deployment):
        for node in deployment.nodes.values():
            assert hasattr(node, "leaf_table")
            assert hasattr(node, "host")

    def test_directory_groups_cover_machines(self, deployment):
        grouped = sum(len(g.replicas) for g in deployment.groups)
        assert grouped == 16

    def test_too_few_machines_rejected(self):
        with pytest.raises(ValueError):
            FarsiteDeployment(machine_count=3)

    def test_salad_actually_joined(self, deployment):
        sizes = [node.table_size for node in deployment.nodes.values()]
        assert sum(sizes) / len(sizes) > 4


class TestDfcCycle:
    def test_duplicates_discovered_and_relocated(self, cycled):
        _, _, _, report = cycled
        # 6 files x 2 replicas = 12 replicas; each host publishes one record
        # per distinct fingerprint it holds, so co-located duplicates dedupe
        # at publication already.
        assert 2 <= report.records_published <= 12
        assert report.duplicate_groups >= 1
        assert report.migrations >= 1

    def test_space_physically_reclaimed(self, cycled):
        _, _, _, report = cycled
        assert report.reclaimed_bytes > 0
        # Best case: 3 copies x 2 replicas coalesce to 2 replicas per doc.
        assert report.physical_bytes < report.logical_bytes

    def test_reads_survive_relocation(self, cycled):
        """After replicas move, every user still reads their own file
        through the updated namespace metadata."""
        deployment, users, _, _ = cycled
        for user in users:
            client = deployment.client_for(user)
            assert client.read_file(f"/home/{user.name}/doc.txt") == DOCUMENT
            assert client.read_file(f"/home/{user.name}/tool.bin") == OTHER

    def test_namespace_hosts_match_reality(self, cycled):
        deployment, _, _, _ = cycled
        for path in deployment.namespace.all_paths():
            entry = deployment.namespace.lookup(path)
            held = sum(
                1
                for host_id in entry.replica_hosts
                if entry.file_id in deployment.nodes[host_id].host.replica_ids()
            )
            assert held == len(entry.replica_hosts)

    def test_cycle_is_idempotent(self, cycled):
        """Re-running the cycle with no new files changes nothing."""
        deployment, _, _, first = cycled
        second = deployment.run_dfc_cycle()
        assert second.records_published == 0
        assert second.physical_bytes == first.physical_bytes

    def test_min_size_threshold(self):
        deployment = FarsiteDeployment(machine_count=8, replication_factor=1, seed=9)
        alice = deployment.create_user("alice")
        bob = deployment.create_user("bob")
        small = b"tiny" * 10
        host = list(deployment.nodes)[:1]
        deployment.client_for(alice).write_file("/a/s", small, replica_hosts=host)
        deployment.client_for(bob).write_file("/b/s", small, replica_hosts=host)
        report = deployment.run_dfc_cycle(min_size=10_000)
        assert report.records_published == 0
