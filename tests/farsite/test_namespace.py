"""The partitioned hierarchical namespace."""

import pytest

from repro.farsite.directory_group import DirectoryGroup
from repro.farsite.namespace import Namespace, _normalize, _region_of


def make_namespace(groups=3):
    return Namespace(
        [DirectoryGroup(list(range(g * 10, g * 10 + 4))) for g in range(groups)]
    )


class TestPathHandling:
    def test_normalize(self):
        assert _normalize("/a//b/") == "/a/b"
        assert _normalize("/") == "/"

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            _normalize("a/b")

    def test_region_is_top_level_directory(self):
        assert _region_of("/home/alice/doc.txt") == "home"
        assert _region_of("/") == ""


class TestOperations:
    def test_create_and_lookup(self):
        ns = make_namespace()
        ns.create("/docs/a.txt", "f1", 100, (1, 2, 3), ("alice",))
        entry = ns.lookup("/docs/a.txt")
        assert entry.file_id == "f1"
        assert entry.replica_hosts == (1, 2, 3)

    def test_lookup_missing(self):
        assert make_namespace().lookup("/nope") is None

    def test_remove(self):
        ns = make_namespace()
        ns.create("/docs/a.txt", "f1", 100, (1,), ("alice",))
        assert ns.remove("/docs/a.txt")
        assert ns.lookup("/docs/a.txt") is None

    def test_same_region_same_group(self):
        ns = make_namespace()
        assert ns.group_for("/home/alice/x") is ns.group_for("/home/bob/y")

    def test_regions_spread_over_groups(self):
        ns = make_namespace(groups=3)
        groups = {id(ns.group_for(f"/region{i}/f")) for i in range(30)}
        assert len(groups) == 3

    def test_set_replica_hosts(self):
        ns = make_namespace()
        ns.create("/docs/a.txt", "f1", 100, (1, 2), ("alice",))
        ns.set_replica_hosts("/docs/a.txt", (7, 8))
        assert ns.lookup("/docs/a.txt").replica_hosts == (7, 8)

    def test_list_region_and_all_paths(self):
        ns = make_namespace()
        ns.create("/docs/a", "f1", 1, (1,), ())
        ns.create("/docs/b", "f2", 1, (1,), ())
        ns.create("/pics/c", "f3", 1, (1,), ())
        assert ns.list_region("/docs") == ("/docs/a", "/docs/b")
        assert ns.all_paths() == ["/docs/a", "/docs/b", "/pics/c"]

    def test_empty_group_list_rejected(self):
        with pytest.raises(ValueError):
            Namespace([])
