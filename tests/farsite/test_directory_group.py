"""Quorum-replicated directory groups tolerating Byzantine members."""

import pytest

from repro.farsite.directory_group import (
    DirectoryEntry,
    DirectoryGroup,
    QuorumFailure,
)


def entry(path="/docs/a", file_id="f1", size=100):
    return DirectoryEntry(
        path=path, file_id=file_id, size=size, replica_hosts=(1, 2, 3), readers=("alice",)
    )


def make_group(members=4, f=1):
    return DirectoryGroup(list(range(1, members + 1)), fault_tolerance=f)


class TestBasicOperations:
    def test_put_get(self):
        group = make_group()
        group.put(entry())
        got = group.get("/docs/a")
        assert got.file_id == "f1"

    def test_get_missing_returns_none(self):
        assert make_group().get("/nope") is None

    def test_delete(self):
        group = make_group()
        group.put(entry())
        assert group.delete("/docs/a") is True
        assert group.get("/docs/a") is None
        assert group.delete("/docs/a") is False

    def test_list_prefix(self):
        group = make_group()
        group.put(entry("/docs/a", "f1"))
        group.put(entry("/docs/b", "f2"))
        group.put(entry("/other/c", "f3"))
        assert group.list("/docs/") == ("/docs/a", "/docs/b")

    def test_set_replica_hosts(self):
        group = make_group()
        group.put(entry())
        group.set_replica_hosts("/docs/a", (7, 8, 9))
        assert group.get("/docs/a").replica_hosts == (7, 8, 9)

    def test_set_hosts_missing_path(self):
        with pytest.raises(KeyError):
            make_group().set_replica_hosts("/ghost", (1,))


class TestByzantineTolerance:
    def test_f_faulty_members_outvoted(self):
        """The paper's guarantee: correct as long as < 1/3 fail arbitrarily."""
        group = make_group(members=4, f=1)
        group.put(entry())
        group.corrupt_member(1)
        assert group.get("/docs/a").file_id == "f1"  # 3 honest >= quorum 3

    def test_too_many_faulty_members_detected(self):
        group = make_group(members=4, f=1)
        group.put(entry())
        group.corrupt_member(1)
        group.corrupt_member(2)
        with pytest.raises(QuorumFailure):
            group.get("/docs/a")

    def test_undersized_group_rejected(self):
        with pytest.raises(ValueError):
            DirectoryGroup([1, 2, 3], fault_tolerance=1)

    def test_corrupt_unknown_member(self):
        with pytest.raises(KeyError):
            make_group().corrupt_member(99)

    def test_larger_group_larger_quorum(self):
        group = DirectoryGroup(list(range(7)), fault_tolerance=2)
        assert group.quorum_size == 5
        group.put(entry())
        group.corrupt_member(0)
        group.corrupt_member(1)
        assert group.get("/docs/a").file_id == "f1"
