"""The end-to-end client write/read path."""

import random

import pytest

from repro.core.convergent import NotAuthorizedError
from repro.farsite.client import FarsiteClient, NoReplicaAvailableError
from repro.farsite.directory_group import DirectoryGroup
from repro.farsite.file_host import FileHost
from repro.farsite.namespace import Namespace

DOCUMENT = b"project plan " * 100


@pytest.fixture
def deployment(user_directory):
    hosts = {i: FileHost(i) for i in range(1, 7)}
    namespace = Namespace([DirectoryGroup([1, 2, 3, 4])])
    return hosts, namespace


def client_for(name, user_directory, deployment, seed=0):
    hosts, namespace = deployment
    return FarsiteClient(
        user_directory.get(name),
        user_directory,
        namespace,
        hosts,
        rng=random.Random(seed),
    )


class TestWriteRead:
    def test_roundtrip(self, user_directory, deployment):
        client = client_for("alice", user_directory, deployment)
        receipt = client.write_file("/home/alice/plan.txt", DOCUMENT)
        assert len(receipt.replica_hosts) == 3
        assert client.read_file("/home/alice/plan.txt") == DOCUMENT

    def test_missing_file(self, user_directory, deployment):
        client = client_for("alice", user_directory, deployment)
        with pytest.raises(FileNotFoundError):
            client.read_file("/ghost")

    def test_reader_list_grants_access(self, user_directory, deployment):
        alice = client_for("alice", user_directory, deployment, seed=1)
        bob = client_for("bob", user_directory, deployment, seed=2)
        alice.write_file("/share/x", DOCUMENT, readers=["bob"])
        assert bob.read_file("/share/x") == DOCUMENT

    def test_non_reader_cannot_decrypt(self, user_directory, deployment):
        alice = client_for("alice", user_directory, deployment, seed=3)
        carol = client_for("carol", user_directory, deployment, seed=4)
        alice.write_file("/private/x", DOCUMENT)
        with pytest.raises(NotAuthorizedError):
            carol.read_file("/private/x")

    def test_replicas_on_all_assigned_hosts(self, user_directory, deployment):
        hosts, _ = deployment
        client = client_for("alice", user_directory, deployment, seed=5)
        receipt = client.write_file("/home/alice/y", DOCUMENT, replica_hosts=[1, 2, 3])
        for host_id in (1, 2, 3):
            assert receipt.file_id in [info for info in hosts[host_id].replica_ids()]


class TestCoalescing:
    def test_cross_user_writes_coalesce(self, user_directory, deployment):
        hosts, _ = deployment
        alice = client_for("alice", user_directory, deployment, seed=6)
        bob = client_for("bob", user_directory, deployment, seed=7)
        alice.write_file("/home/alice/same", DOCUMENT, replica_hosts=[1, 2, 3])
        receipt = bob.write_file("/home/bob/same", DOCUMENT, replica_hosts=[1, 2, 3])
        assert set(receipt.coalesced_on) == {1, 2, 3}
        assert hosts[1].reclaimed_bytes == len(DOCUMENT)


class TestFailureHandling:
    def test_read_falls_back_to_surviving_replica(self, user_directory, deployment):
        hosts, _ = deployment
        client = client_for("alice", user_directory, deployment, seed=8)
        client.write_file("/home/alice/z", DOCUMENT, replica_hosts=[1, 2, 3])
        hosts[1].drop_replica
        del hosts[1]  # host 1 vanishes entirely
        assert client.read_file("/home/alice/z") == DOCUMENT

    def test_all_replicas_gone(self, user_directory, deployment):
        hosts, _ = deployment
        client = client_for("alice", user_directory, deployment, seed=9)
        receipt = client.write_file("/home/alice/w", DOCUMENT, replica_hosts=[1, 2])
        for host_id in (1, 2):
            hosts[host_id].drop_replica(receipt.file_id)
        with pytest.raises(NoReplicaAvailableError):
            client.read_file("/home/alice/w")

    def test_delete_file(self, user_directory, deployment):
        client = client_for("alice", user_directory, deployment, seed=10)
        client.write_file("/home/alice/del", DOCUMENT)
        client.delete_file("/home/alice/del")
        with pytest.raises(FileNotFoundError):
            client.read_file("/home/alice/del")
