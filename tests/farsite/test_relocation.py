"""Duplicate-replica relocation planning."""

from repro.core.fingerprint import synthetic_fingerprint
from repro.farsite.relocation import RelocationPlanner


FP = synthetic_fingerprint(10_000, 1)
FP2 = synthetic_fingerprint(20_000, 2)


class TestPlanning:
    def test_disjoint_hosts_migrate_to_common_set(self):
        planner = RelocationPlanner(replication_factor=2)
        plan = planner.plan({FP: {"a": [1, 2], "b": [3, 4]}})
        assert plan.moved_replicas == 2
        canonical = set(plan.canonical_hosts[FP])
        for migration in plan.migrations:
            assert migration.target_host in canonical

    def test_already_colocated_needs_no_moves(self):
        planner = RelocationPlanner(replication_factor=2)
        plan = planner.plan({FP: {"a": [1, 2], "b": [1, 2]}})
        assert plan.moved_replicas == 0

    def test_canonical_hosts_maximize_existing_coverage(self):
        planner = RelocationPlanner(replication_factor=2)
        # Hosts 1 and 2 already hold most replicas; they should be chosen.
        plan = planner.plan({FP: {"a": [1, 2], "b": [1, 2], "c": [1, 5]}})
        assert set(plan.canonical_hosts[FP]) == {1, 2}
        assert plan.moved_replicas == 1  # only c's replica on 5 moves to 2

    def test_multiple_groups_planned_independently(self):
        planner = RelocationPlanner(replication_factor=1)
        plan = planner.plan(
            {
                FP: {"a": [1], "b": [2]},
                FP2: {"c": [3], "d": [3]},
            }
        )
        assert FP in plan.canonical_hosts and FP2 in plan.canonical_hosts
        assert plan.moved_replicas == 1  # only the FP group needs one move

    def test_bytes_moved(self):
        planner = RelocationPlanner(replication_factor=1)
        plan = planner.plan({FP: {"a": [1], "b": [2]}})
        assert plan.bytes_moved() == FP.size * plan.moved_replicas


class TestApply:
    def test_apply_updates_host_map(self):
        planner = RelocationPlanner(replication_factor=2)
        replica_hosts = {"a": [1, 2], "b": [3, 4]}
        plan = planner.plan({FP: {k: list(v) for k, v in replica_hosts.items()}})
        planner.apply(plan, replica_hosts)
        canonical = set(plan.canonical_hosts[FP])
        assert set(replica_hosts["a"]) == canonical
        assert set(replica_hosts["b"]) == canonical

    def test_invalid_replication_factor(self):
        import pytest

        with pytest.raises(ValueError):
            RelocationPlanner(replication_factor=0)
