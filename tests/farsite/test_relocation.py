"""Duplicate-replica relocation planning."""

from repro.core.fingerprint import synthetic_fingerprint
from repro.farsite.relocation import RelocationPlanner


FP = synthetic_fingerprint(10_000, 1)
FP2 = synthetic_fingerprint(20_000, 2)


class TestPlanning:
    def test_disjoint_hosts_migrate_to_common_set(self):
        planner = RelocationPlanner(replication_factor=2)
        plan = planner.plan({FP: {"a": [1, 2], "b": [3, 4]}})
        assert plan.moved_replicas == 2
        canonical = set(plan.canonical_hosts[FP])
        for migration in plan.migrations:
            assert migration.target_host in canonical

    def test_already_colocated_needs_no_moves(self):
        planner = RelocationPlanner(replication_factor=2)
        plan = planner.plan({FP: {"a": [1, 2], "b": [1, 2]}})
        assert plan.moved_replicas == 0

    def test_canonical_hosts_maximize_existing_coverage(self):
        planner = RelocationPlanner(replication_factor=2)
        # Hosts 1 and 2 already hold most replicas; they should be chosen.
        plan = planner.plan({FP: {"a": [1, 2], "b": [1, 2], "c": [1, 5]}})
        assert set(plan.canonical_hosts[FP]) == {1, 2}
        assert plan.moved_replicas == 1  # only c's replica on 5 moves to 2

    def test_multiple_groups_planned_independently(self):
        planner = RelocationPlanner(replication_factor=1)
        plan = planner.plan(
            {
                FP: {"a": [1], "b": [2]},
                FP2: {"c": [3], "d": [3]},
            }
        )
        assert FP in plan.canonical_hosts and FP2 in plan.canonical_hosts
        assert plan.moved_replicas == 1  # only the FP group needs one move

    def test_bytes_moved(self):
        planner = RelocationPlanner(replication_factor=1)
        plan = planner.plan({FP: {"a": [1], "b": [2]}})
        assert plan.bytes_moved() == FP.size * plan.moved_replicas


class TestUnderReplication:
    """Files with fewer replicas than the canonical set is wide.

    The pre-fix planner paired extra sources with missing targets via a
    bare ``zip``: a file holding fewer replicas than R canonical hosts had
    leftover *targets* silently dropped, leaving it under-replicated after
    relocation and never delivering its content to the full canonical set.
    """

    def test_under_replicated_file_reaches_full_canonical_set(self):
        planner = RelocationPlanner(replication_factor=2)
        # "a" pins the canonical set to {1, 2}; "b" holds one replica on 5:
        # its single extra source pairs with one canonical host, and the
        # other canonical host must receive a *copy* (pre-fix: dropped).
        plan = planner.plan({FP: {"a": [1, 2], "b": [5]}})
        replica_hosts = {"a": [1, 2], "b": [5]}
        planner.apply(plan, replica_hosts)
        canonical = set(plan.canonical_hosts[FP])
        assert canonical == {1, 2}
        assert set(replica_hosts["b"]) == canonical
        assert plan.moved_replicas == 1
        assert plan.copied_replicas == 1

    def test_copy_sourced_from_a_replica_the_file_keeps(self):
        planner = RelocationPlanner(replication_factor=3)
        plan = planner.plan({FP: {"a": [1, 2, 3], "b": [1]}})
        copies = [m for m in plan.migrations if m.copy]
        assert len(copies) == 2  # b reaches hosts 2 and 3
        final = {1}
        for m in plan.migrations:
            if m.file_id == "b":
                if not m.copy:
                    final.discard(m.source_host)
                # Copies must read from a host that still has the replica.
                if m.copy:
                    assert m.source_host in final
                final.add(m.target_host)
        assert final == set(plan.canonical_hosts[FP])

    def test_apply_handles_copies_without_value_error(self):
        planner = RelocationPlanner(replication_factor=2)
        replica_hosts = {"a": [1, 2], "b": [1]}
        plan = planner.plan({FP: {k: list(v) for k, v in replica_hosts.items()}})
        # A move-style apply would hosts.remove() the copy's source -- a
        # replica the file keeps -- leaving it off its own canonical set.
        planner.apply(plan, replica_hosts)
        assert set(replica_hosts["b"]) == set(plan.canonical_hosts[FP])
        assert 1 in replica_hosts["b"]  # the copy's source replica survives

    def test_group_spanning_fewer_hosts_than_r_records_shortfall(self):
        planner = RelocationPlanner(replication_factor=3)
        # Both files live solely on host 1: no migration can conjure two
        # more distinct hosts, so the plan must say so explicitly.
        plan = planner.plan({FP: {"a": [1], "b": [1]}})
        assert plan.shortfalls == {FP: 2}
        assert plan.total_shortfall({FP: 2}) == 4  # 2 files x 2 missing slots
        assert plan.migrations == []

    def test_full_groups_report_no_shortfall(self):
        planner = RelocationPlanner(replication_factor=2)
        plan = planner.plan({FP: {"a": [1, 2], "b": [3, 4]}})
        assert plan.shortfalls == {}
        assert plan.total_shortfall({FP: 2}) == 0


class TestApply:
    def test_apply_updates_host_map(self):
        planner = RelocationPlanner(replication_factor=2)
        replica_hosts = {"a": [1, 2], "b": [3, 4]}
        plan = planner.plan({FP: {k: list(v) for k, v in replica_hosts.items()}})
        planner.apply(plan, replica_hosts)
        canonical = set(plan.canonical_hosts[FP])
        assert set(replica_hosts["a"]) == canonical
        assert set(replica_hosts["b"]) == canonical

    def test_invalid_replication_factor(self):
        import pytest

        with pytest.raises(ValueError):
            RelocationPlanner(replication_factor=0)
