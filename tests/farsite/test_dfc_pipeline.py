"""End-to-end DFC pipeline: SALAD discovery -> relocation -> SIS coalescing."""

import pytest

from repro.experiments.dfc_run import DfcConfig
from repro.farsite.dfc_pipeline import DfcPipeline
from repro.workload.generator import CorpusSpec, generate_corpus

# Small corpus with capped file sizes: the pipeline materializes bytes.
SPEC = CorpusSpec(
    machines=20,
    mean_files_per_machine=8,
    max_file_size=64 * 1024,
    system_contents=3,
)


@pytest.fixture(scope="module")
def executed_pipeline():
    corpus = generate_corpus(SPEC, seed=5)
    pipeline = DfcPipeline(corpus, DfcConfig(target_redundancy=2.5, seed=5))
    report = pipeline.execute()
    return corpus, pipeline, report


class TestEndToEnd:
    def test_physical_reclaim_at_least_prediction(self, executed_pipeline):
        """The SIS layer must realize every discovered coalescing
        opportunity (it may realize slightly more if discovery was split
        into components the relocation pass merged)."""
        _, _, report = executed_pipeline
        assert report.physically_reclaimed >= report.predicted_reclaimed
        assert report.predicted_reclaimed > 0

    def test_reclaim_bounded_by_ideal(self, executed_pipeline):
        corpus, _, report = executed_pipeline
        assert report.physically_reclaimed <= corpus.ideal_reclaimable_bytes()
        assert report.total_bytes == corpus.total_bytes

    def test_migrations_moved_real_bytes(self, executed_pipeline):
        _, pipeline, report = executed_pipeline
        assert report.migrations > 0
        assert report.bytes_moved > 0

    def test_duplicates_colocated_after_relocation(self, executed_pipeline):
        """Every relocated duplicate group must sit on one host, coalesced."""
        _, pipeline, _ = executed_pipeline
        by_fingerprint = {}
        for file_id, (fingerprint, hosts) in pipeline.replicas.items():
            by_fingerprint.setdefault(fingerprint, []).append((file_id, hosts[0]))
        for fingerprint, placements in by_fingerprint.items():
            hosts = {host for _, host in placements}
            if len(placements) > 1 and len(hosts) == 1:
                host = pipeline.hosts[hosts.pop()]
                first = placements[0][0]
                assert host.sis.link_count(first) == len(placements)

    def test_files_survive_relocation_intact(self, executed_pipeline):
        """Relocation must preserve every file's content exactly."""
        from repro.workload.content import synthetic_content

        corpus, pipeline, _ = executed_pipeline
        for machine in corpus.machines:
            for index, stat in enumerate(machine.files):
                file_id = f"m{machine.machine_index}-f{index}"
                fingerprint, hosts = pipeline.replicas[file_id]
                blob = pipeline.hosts[hosts[0]].sis.read(file_id)
                assert blob == synthetic_content(stat.content_id, stat.size)

    def test_consumed_fraction_reasonable(self, executed_pipeline):
        corpus, _, report = executed_pipeline
        ideal_fraction = corpus.summary().duplicate_byte_fraction
        assert report.reclaimed_fraction > 0.4 * ideal_fraction


class TestReplication:
    """The R >= 2 pipeline: placement, co-location, availability telemetry."""

    @pytest.fixture(scope="class")
    def replicated(self):
        corpus = generate_corpus(SPEC, seed=5)
        pipeline = DfcPipeline(
            corpus,
            DfcConfig(target_redundancy=2.5, seed=5, replication_factor=2),
        )
        report = pipeline.execute()
        return corpus, pipeline, report

    def test_every_file_on_r_distinct_hosts(self, replicated):
        _, pipeline, _ = replicated
        for file_id, (_, hosts) in pipeline.replicas.items():
            assert len(hosts) == 2
            assert len(set(hosts)) == 2

    def test_total_bytes_scale_with_replication(self, replicated):
        corpus, _, report = replicated
        assert report.total_bytes == 2 * corpus.total_bytes
        assert report.replication_factor == 2

    def test_replicas_actually_stored_on_their_hosts(self, replicated):
        _, pipeline, _ = replicated
        for file_id, (_, hosts) in pipeline.replicas.items():
            for host in hosts:
                assert pipeline.hosts[host].sis.read(file_id) is not None

    def test_availability_telemetry_in_report(self, replicated):
        _, pipeline, report = replicated
        assert 0.0 < report.min_availability <= report.mean_availability <= 1.0
        # Two independent replicas beat the worst single host.
        worst_host = min(pipeline.availability.values())
        assert report.min_availability > worst_host

    def test_duplicate_groups_colocated_on_canonical_pair(self, replicated):
        """After relocation each discovered group's files share one host
        set, so every host's SIS coalesces all of its copies."""
        _, pipeline, report = replicated
        assert report.migrations > 0
        by_fingerprint = {}
        for file_id, (fingerprint, hosts) in pipeline.replicas.items():
            by_fingerprint.setdefault(fingerprint, []).append(
                (file_id, frozenset(hosts))
            )
        colocated_groups = 0
        for placements in by_fingerprint.values():
            host_sets = {hosts for _, hosts in placements}
            if len(placements) > 1 and len(host_sets) == 1:
                colocated_groups += 1
                host_set = next(iter(host_sets))
                first = placements[0][0]
                for host in host_set:
                    assert pipeline.hosts[host].sis.link_count(first) == len(
                        placements
                    )
        assert colocated_groups > 0

    def test_availability_override_used(self):
        corpus = generate_corpus(SPEC, seed=5)
        override = {
            machine.machine_index: 0.42 for machine in corpus.machines
        }
        pipeline = DfcPipeline(
            corpus,
            DfcConfig(target_redundancy=2.5, seed=5, replication_factor=2),
            machine_availability=override,
        )
        pipeline.load_hosts()
        assert set(pipeline.availability.values()) == {0.42}
        pipeline.close_stores()

    def test_replication_factor_validated(self):
        with pytest.raises(ValueError):
            DfcConfig(replication_factor=0)

    def test_replication_beyond_hosts_rejected(self):
        corpus = generate_corpus(
            CorpusSpec(machines=3, mean_files_per_machine=2, max_file_size=4096),
            seed=1,
        )
        pipeline = DfcPipeline(corpus, DfcConfig(seed=1, replication_factor=5))
        with pytest.raises(ValueError):
            pipeline.load_hosts()

    def test_r1_path_unchanged_by_replication_support(self, executed_pipeline):
        """R=1 keeps the seed's owner-hosted single copy: every file's one
        replica starts on its owner machine's leaf (bit-identical loading,
        so every existing figure is untouched)."""
        corpus, pipeline, report = executed_pipeline
        assert report.replication_factor == 1
        assert report.total_bytes == corpus.total_bytes


class TestThreshold:
    def test_min_size_threshold_respected(self):
        corpus = generate_corpus(SPEC, seed=6)
        pipeline = DfcPipeline(corpus, DfcConfig(target_redundancy=2.5, seed=6))
        report = pipeline.execute(min_size=16 * 1024)
        # No match below the threshold may have been acted upon.
        for _, payload in pipeline.run.salad.collected_matches():
            assert payload.fingerprint.size >= 16 * 1024
        assert report.physically_reclaimed >= report.predicted_reclaimed
