"""The paper's headline claims, asserted end-to-end at miniature scale.

Abstract: "Measurement of over 500 desktop file systems shows that nearly
half of all consumed space is occupied by duplicate files. ... Our mechanism
includes 1) convergent encryption, which enables duplicate files to [be]
coalesced into the space of a single file, even if the files are encrypted
with different users' keys, and 2) SALAD ... Large-scale simulation
experiments show that the duplicate-file coalescing system is scalable,
highly effective, and fault-tolerant."

Each test here is one sentence of that abstract.
"""

import random

import pytest

from repro.core import convergent_decrypt, convergent_encrypt
from repro.core.keyring import UserDirectory
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.workload.generator import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        CorpusSpec(machines=120, mean_files_per_machine=30), seed=17
    )


class TestNearlyHalfTheSpaceIsDuplicates:
    def test_corpus_duplication(self, corpus):
        fraction = corpus.summary().duplicate_byte_fraction
        assert 0.35 <= fraction <= 0.60  # "nearly half"


class TestConvergentEncryptionCoalescesAcrossKeys:
    def test_different_users_one_blob(self):
        users = UserDirectory()
        rng = random.Random(0)
        writers = [users.create_user(f"user{i}", rng=rng) for i in range(4)]
        document = b"common application binary " * 64
        ciphertexts = [
            convergent_encrypt(document, {u.name: u.public_key}) for u in writers
        ]
        blobs = {c.data for c in ciphertexts}
        assert len(blobs) == 1  # one stored copy serves all four users
        for user, ciphertext in zip(writers, ciphertexts):
            assert convergent_decrypt(ciphertext, user) == document


class TestHighlyEffective:
    def test_reclaims_nearly_all_duplicate_space(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=17))
        run.build()
        run.insert_all()
        ideal = corpus.summary().duplicate_byte_fraction
        assert run.reclaimed_fraction() >= 0.80 * ideal


class TestScalable:
    def test_per_machine_state_grows_sublinearly(self, corpus):
        """Leaf tables are O(sqrt(L)) and databases O(F/L * lambda): doubling
        the corpus roughly preserves per-machine record load."""
        small = DfcRun(
            generate_corpus(CorpusSpec(machines=60, mean_files_per_machine=30), seed=3),
            DfcConfig(target_redundancy=2.0, seed=3),
        )
        small.build()
        small.insert_all()
        large = DfcRun(
            generate_corpus(CorpusSpec(machines=240, mean_files_per_machine=30), seed=3),
            DfcConfig(target_redundancy=2.0, seed=3),
        )
        large.build()
        large.insert_all()
        small_db = sum(small.database_sizes()) / 60
        large_db = sum(large.database_sizes()) / 240
        assert large_db < 2.5 * small_db  # constant-ish, not 4x
        small_t = sum(small.leaf_table_sizes()) / 60
        large_t = sum(large.leaf_table_sizes()) / 240
        assert large_t < 3.0 * small_t  # ~2x for 4x machines


class TestFaultTolerant:
    def test_half_downtime_still_reclaims_majority(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=19))
        run.build()
        run.set_failure_probability(0.5)
        run.insert_all()
        ideal = corpus.summary().duplicate_byte_fraction
        assert run.reclaimed_fraction() >= 0.5 * ideal  # paper: 38 of 46


class TestDecentralized:
    def test_no_machine_is_special(self, corpus):
        """No central coordinator: removing any single machine before
        dissemination barely changes the outcome."""
        baseline = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=23))
        baseline.build()
        baseline.insert_all()

        lesioned = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=23))
        lesioned.build()
        first_leaf = next(iter(lesioned.salad.leaves.values()))
        first_leaf.fail()
        lesioned.insert_all()
        assert (
            lesioned.reclaimed_fraction()
            >= 0.9 * baseline.reclaimed_fraction()
        )
