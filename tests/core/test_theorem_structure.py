"""The structure of the section 3.1 proof, checked empirically.

The proof's pivotal dichotomy: a successful attacker program either queried
the hash oracle on the true plaintext P ("includes a query to oracle H for
the value of H(P)") or succeeded by blind luck with probability o(1/n^e).
These tests instrument the oracles and verify both horns:

- every dictionary-attack win queried H(P) before winning;
- an attacker that never queries H cannot distinguish the true decryption
  from random strings (each inverse query under a wrong key yields an
  independent random plaintext).
"""

import random

from repro.core.security_model import ConvergentGame, dictionary_attack


def make_candidates(count: int, rng_seed: int = 7, width: int = 8):
    rng = random.Random(rng_seed)
    out = set()
    while len(out) < count:
        out.add(bytes(rng.getrandbits(8) for _ in range(width)))
    return sorted(out)


class TestQueryDichotomy:
    def test_every_winner_queried_hash_of_plaintext(self):
        """Horn 1: success implies an H(P) query (the Sigma'' reduction)."""
        candidates = make_candidates(40)
        for seed in range(8):
            game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(seed))
            queried = []
            original_query = game.hash_oracle.query

            def spy(message, _original=original_query, _log=queried):
                _log.append(bytes(message))
                return _original(message)

            game.hash_oracle.query = spy  # type: ignore[assignment]
            transcript = dictionary_attack(game)
            assert transcript.success
            assert transcript.guessed in queried

    def test_wrong_key_decryptions_are_uninformative(self):
        """Horn 2: without H(P), inverse queries yield independent noise.

        Decrypting the challenge under many wrong keys must produce distinct
        pseudo-plaintexts, none equal to a candidate except by chance
        (candidate space 2^64, so expected hits are 0).
        """
        candidates = make_candidates(100)
        game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(99))
        rng = random.Random(1)
        outputs = set()
        for _ in range(200):
            key = bytes(rng.getrandbits(8) for _ in range(4))
            outputs.add(game.cipher_oracle.decrypt(key, game.ciphertext))
        # All distinct (a permutation family sampled lazily), ...
        assert len(outputs) >= 199
        # ...and none lands in the candidate set by accident.
        hits = outputs & set(candidates)
        assert len(hits) <= 1  # the true key may appear once by luck (2^-32)

    def test_correct_key_is_the_unique_path_to_plaintext(self):
        """Only E^-1 under H(P) returns P."""
        candidates = make_candidates(30)
        game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(5))
        transcript = dictionary_attack(game)
        true_plaintext = transcript.guessed
        true_key = game.hash_oracle.query(true_plaintext)
        assert game.cipher_oracle.decrypt(true_key, game.ciphertext) == true_plaintext
