"""Convergent encryption: the section 3 construction (Eqs. 1-4)."""

import random

import pytest

from repro.core.convergent import (
    NotAuthorizedError,
    convergent_decrypt,
    convergent_encrypt,
    reencrypt_key_for,
    verify_convergent,
)

DOCUMENT = b"the same document, byte for byte " * 32


class TestConvergence:
    def test_identical_plaintexts_identical_data_ciphertext(self, alice, bob):
        """The defining property: c_f depends only on P_f (Eq. 2)."""
        by_alice = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        by_bob = convergent_encrypt(DOCUMENT, {"bob": bob.public_key})
        assert by_alice.data == by_bob.data

    def test_metadata_differs_per_user(self, alice, bob):
        by_alice = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        by_bob = convergent_encrypt(DOCUMENT, {"bob": bob.public_key})
        assert dict(by_alice.metadata) != dict(by_bob.metadata)

    def test_different_plaintexts_different_ciphertexts(self, alice):
        a = convergent_encrypt(b"contents A" * 10, {"alice": alice.public_key})
        b = convergent_encrypt(b"contents B" * 10, {"alice": alice.public_key})
        assert a.data != b.data

    def test_ciphertext_is_not_plaintext(self, alice):
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        assert ciphertext.data != DOCUMENT

    def test_ciphertext_length_equals_plaintext_length(self, alice):
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        assert len(ciphertext.data) == len(DOCUMENT)


class TestDecryption:
    def test_each_reader_decrypts(self, alice, bob):
        ciphertext = convergent_encrypt(
            DOCUMENT, {"alice": alice.public_key, "bob": bob.public_key}
        )
        assert convergent_decrypt(ciphertext, alice) == DOCUMENT
        assert convergent_decrypt(ciphertext, bob) == DOCUMENT

    def test_unauthorized_user_rejected(self, alice, bob):
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        with pytest.raises(NotAuthorizedError):
            convergent_decrypt(ciphertext, bob)

    def test_empty_reader_set_rejected(self):
        with pytest.raises(ValueError):
            convergent_encrypt(DOCUMENT, {})

    def test_empty_file(self, alice):
        ciphertext = convergent_encrypt(b"", {"alice": alice.public_key})
        assert convergent_decrypt(ciphertext, alice) == b""


class TestControlledLeak:
    def test_candidate_confirmation_works(self, alice):
        """The intended leak: a candidate plaintext can be confirmed."""
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        assert verify_convergent(ciphertext, DOCUMENT)

    def test_wrong_candidate_rejected(self, alice):
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        assert not verify_convergent(ciphertext, b"x" * len(DOCUMENT))


class TestAccessGranting:
    def test_reader_can_grant_access(self, alice, bob):
        """Any holder of the plaintext can mint mu_u for a new reader."""
        ciphertext = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        mu_bob = reencrypt_key_for(DOCUMENT, bob.public_key, rng=random.Random(5))
        shared = ciphertext.add_reader("bob", mu_bob)
        assert convergent_decrypt(shared, bob) == DOCUMENT
        assert convergent_decrypt(shared, alice) == DOCUMENT

    def test_metadata_bytes_counts_all_readers(self, alice, bob):
        ciphertext = convergent_encrypt(
            DOCUMENT, {"alice": alice.public_key, "bob": bob.public_key}
        )
        single = convergent_encrypt(DOCUMENT, {"alice": alice.public_key})
        assert ciphertext.metadata_bytes() > single.metadata_bytes()
