"""Block-level convergent encryption and chunking."""

import pytest

from repro.core.blocks import (
    BlockManifest,
    decrypt_blocks,
    deduplicated_bytes,
    encrypt_blocks,
    split_content_defined,
    split_fixed,
)
from repro.workload.content import synthetic_content

DATA = synthetic_content(1, 200_000)


class TestFixedSplit:
    def test_blocks_reassemble(self):
        assert b"".join(split_fixed(DATA, 4096)) == DATA

    def test_block_sizes(self):
        blocks = split_fixed(DATA, 4096)
        assert all(len(b) == 4096 for b in blocks[:-1])
        assert 0 < len(blocks[-1]) <= 4096

    def test_empty_input(self):
        assert split_fixed(b"") == [b""]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            split_fixed(DATA, 0)


class TestContentDefinedSplit:
    def test_blocks_reassemble(self):
        assert b"".join(split_content_defined(DATA)) == DATA

    def test_size_bounds_respected(self):
        chunks = split_content_defined(DATA, target_size=4096)
        for chunk in chunks[:-1]:
            assert 1024 <= len(chunk) <= 4 * 4096

    def test_deterministic(self):
        assert split_content_defined(DATA) == split_content_defined(DATA)

    def test_insertion_shifts_few_boundaries(self):
        """The LBFS property: a small insertion changes O(1) chunks."""
        edited = DATA[:50_000] + b"INSERTED BYTES" + DATA[50_000:]
        original = {bytes(c) for c in split_content_defined(DATA, 4096)}
        changed = [c for c in split_content_defined(edited, 4096) if c not in original]
        assert len(changed) <= 4

    def test_fixed_split_has_no_insertion_tolerance(self):
        """Contrast: fixed blocking re-writes everything after the edit."""
        edited = DATA[:50_000] + b"INSERTED BYTES" + DATA[50_000:]
        original = {bytes(c) for c in split_fixed(DATA, 4096)}
        changed = [c for c in split_fixed(edited, 4096) if c not in original]
        assert len(changed) > 20

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_content_defined(DATA, target_size=10)
        with pytest.raises(ValueError):
            split_content_defined(DATA, target_size=4096, min_size=8192)


class TestBlockEncryption:
    def test_roundtrip_via_block_store(self):
        manifest, encrypted = encrypt_blocks(split_content_defined(DATA, 4096))
        store = {b.fingerprint: b.ciphertext for b in encrypted}
        assert decrypt_blocks(manifest, store) == DATA

    def test_identical_blocks_identical_ciphertext(self):
        """Per-block convergence: shared blocks coalesce across files."""
        _, enc_a = encrypt_blocks([b"shared block", b"only in a"])
        _, enc_b = encrypt_blocks([b"shared block", b"only in b"])
        assert enc_a[0].ciphertext == enc_b[0].ciphertext
        assert enc_a[1].ciphertext != enc_b[1].ciphertext

    def test_ciphertext_not_plaintext(self):
        _, encrypted = encrypt_blocks([DATA[:4096]])
        assert encrypted[0].ciphertext != DATA[:4096]


class TestDeduplicatedBytes:
    def test_shared_blocks_counted_once(self):
        m1, _ = encrypt_blocks([b"A" * 100, b"B" * 100])
        m2, _ = encrypt_blocks([b"A" * 100, b"C" * 100])
        logical, physical = deduplicated_bytes([m1, m2])
        assert logical == 400
        assert physical == 300

    def test_versioned_files_share_most_blocks(self):
        edited = DATA[:100_000] + b"xyz" + DATA[100_000:]
        m1, _ = encrypt_blocks(split_content_defined(DATA, 4096))
        m2, _ = encrypt_blocks(split_content_defined(edited, 4096))
        logical, physical = deduplicated_bytes([m1, m2])
        assert physical < 0.6 * logical  # versions share nearly everything
