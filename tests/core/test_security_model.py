"""Empirical checks of the section 3.1 security theorem.

The theorem says: an attacker with polynomially many oracle queries cannot
recover P beyond its a-priori guessability.  These tests run the two attack
strategies in the random-oracle game:

- the *dictionary* attack (permitted leak) always succeeds given enough
  queries to enumerate the candidate set;
- the *blind* attack (what the theorem forbids) succeeds with frequency
  bounded by its query budget over the key space -- statistically
  indistinguishable from guessing.
"""

import random

from repro.core.security_model import (
    ConvergentGame,
    blind_attack,
    dictionary_attack,
    leak_is_exactly_equality,
)


def make_candidates(count: int, width: int = 8) -> list:
    rng = random.Random(42)
    out = set()
    while len(out) < count:
        out.add(bytes(rng.getrandbits(8) for _ in range(width)))
    return sorted(out)


class TestDictionaryAttack:
    def test_always_succeeds_with_full_enumeration(self):
        candidates = make_candidates(50)
        wins = 0
        for seed in range(10):
            game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(seed))
            transcript = dictionary_attack(game)
            wins += transcript.success
        assert wins == 10

    def test_query_cost_linear_in_candidates(self):
        candidates = make_candidates(64)
        game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(1))
        dictionary_attack(game)
        # At most 2 queries per candidate tried (one hash + one encrypt).
        assert game.attacker_queries() <= 2 * len(candidates)

    def test_partial_enumeration_can_miss(self):
        candidates = make_candidates(60)
        missed = 0
        for seed in range(12):
            game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(seed))
            transcript = dictionary_attack(game, tries=1)
            missed += not transcript.success
        assert missed > 0  # trying 1 of 60 candidates usually fails


class TestBlindAttack:
    def test_succeeds_no_better_than_chance(self):
        """With a 2^32 key space and 20-query budget, wins should be ~0."""
        candidates = make_candidates(1000)
        wins = 0
        for seed in range(20):
            game = ConvergentGame(candidates, key_bytes=4, rng=random.Random(seed))
            transcript = blind_attack(game, query_budget=20, rng=random.Random(seed + 1))
            wins += transcript.success
        assert wins == 0

    def test_respects_query_budget(self):
        game = ConvergentGame(make_candidates(10), key_bytes=4, rng=random.Random(3))
        blind_attack(game, query_budget=15, rng=random.Random(4))
        assert game.attacker_queries() == 15


class TestLeakCharacterization:
    def test_equal_plaintexts_leak_equality(self):
        assert leak_is_exactly_equality(b"same p", b"same p", rng=random.Random(5))

    def test_unequal_plaintexts_leak_nothing(self):
        assert not leak_is_exactly_equality(b"plainA", b"plainB", rng=random.Random(6))

    def test_length_mismatch_distinguishable(self):
        assert not leak_is_exactly_equality(b"short", b"longer", rng=random.Random(7))


class TestGameValidation:
    def test_rejects_empty_candidates(self):
        import pytest

        with pytest.raises(ValueError):
            ConvergentGame([])

    def test_rejects_mixed_lengths(self):
        import pytest

        with pytest.raises(ValueError):
            ConvergentGame([b"ab", b"abc"])
