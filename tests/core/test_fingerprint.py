"""File fingerprints: encoding, ordering, and collision arithmetic."""

import pytest

from repro.core.fingerprint import (
    FINGERPRINT_BYTES,
    Fingerprint,
    fingerprint_of,
    synthetic_fingerprint,
)
from repro.salad.model import fingerprint_collision_probability


class TestConstruction:
    def test_from_content(self):
        fp = fingerprint_of(b"hello world")
        assert fp.size == 11
        assert len(fp.content_digest) == 20

    def test_identical_content_identical_fingerprint(self):
        assert fingerprint_of(b"same") == fingerprint_of(b"same")

    def test_different_content_different_fingerprint(self):
        assert fingerprint_of(b"aaa") != fingerprint_of(b"bbb")

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Fingerprint(size=-1, content_digest=bytes(20))

    def test_rejects_wrong_digest_width(self):
        with pytest.raises(ValueError):
            Fingerprint(size=1, content_digest=bytes(19))


class TestEncoding:
    def test_roundtrip(self):
        fp = fingerprint_of(b"roundtrip me")
        assert Fingerprint.from_bytes(fp.to_bytes()) == fp

    def test_width(self):
        assert len(fingerprint_of(b"x").to_bytes()) == FINGERPRINT_BYTES == 28

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            Fingerprint.from_bytes(bytes(27))


class TestOrdering:
    def test_size_dominates_order(self):
        """Smaller files sort lower -- the Fig. 13 eviction rule relies on it."""
        small = synthetic_fingerprint(100, 1)
        large = synthetic_fingerprint(200, 2)
        assert small < large

    def test_equal_sizes_ordered_by_digest(self):
        a = synthetic_fingerprint(100, 1)
        b = synthetic_fingerprint(100, 2)
        assert (a < b) != (b < a)

    def test_sort_matches_encoded_bytes(self):
        fps = [synthetic_fingerprint(s, c) for s, c in [(5, 1), (3, 9), (5, 2), (900, 0)]]
        assert sorted(fps) == sorted(fps, key=lambda f: f.to_bytes())


class TestSynthetic:
    def test_deterministic(self):
        assert synthetic_fingerprint(64, 7) == synthetic_fingerprint(64, 7)

    def test_distinct_contents_distinct_digests(self):
        assert synthetic_fingerprint(64, 7) != synthetic_fingerprint(64, 8)

    def test_routing_bits_are_spread(self):
        """Low bits of the digest drive cell-IDs; they must vary."""
        low_bits = {synthetic_fingerprint(64, c).hash_as_int() & 0xFF for c in range(200)}
        assert len(low_bits) > 100


class TestCollisionMath:
    def test_paper_order_of_magnitude(self):
        """Section 4.1: for F files, P(collision) ~= F * 1e-24."""
        p = fingerprint_collision_probability(10_514_105)
        assert p < 1e-16  # vanishing at the paper's scale
