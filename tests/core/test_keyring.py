"""Users and the user directory."""

import random

import pytest

from repro.core.keyring import User, UserDirectory


class TestUser:
    def test_create_generates_keypair(self):
        user = User.create("dana", rng=random.Random(1))
        assert user.public_key.modulus_bits == 512

    def test_unlock_hash_key(self):
        user = User.create("erin", rng=random.Random(2))
        secret = b"0123456789abcdef"
        locked = user.public_key.encrypt(secret, rng=random.Random(3))
        assert user.unlock_hash_key(locked) == secret


class TestUserDirectory:
    def test_create_and_get(self):
        users = UserDirectory()
        created = users.create_user("f", rng=random.Random(4))
        assert users.get("f") is created
        assert "f" in users
        assert len(users) == 1

    def test_duplicate_name_rejected(self):
        users = UserDirectory()
        users.create_user("g", rng=random.Random(5))
        with pytest.raises(ValueError):
            users.add(User.create("g", rng=random.Random(6)))

    def test_missing_user_keyerror(self):
        with pytest.raises(KeyError):
            UserDirectory().get("nobody")

    def test_public_keys_lookup(self, user_directory):
        keys = user_directory.public_keys(["alice", "bob"])
        assert set(keys) == {"alice", "bob"}
        assert keys["alice"] != keys["bob"]
