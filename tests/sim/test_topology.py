"""The site/rack topology model and its Network integration.

Covers deterministic placement, link naming and latency classes, the
uniformity contract the sharded engine relies on, the CLI spec parser,
named-link cuts (including mid-flight severing), per-class counters, the
integer-tick delivery windows (equal nominal delays must share one batch,
and chained hops must not accumulate float drift), and the headline
equivalence claim: the degenerate one-site topology is trace-identical to
the flat fabric.
"""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine
from repro.sim.network import Network
from repro.sim.topology import (
    LinkClass,
    Topology,
    one_site,
    parse_topology,
    topology_presets,
)


class Probe(SimMachine):
    def __init__(self, identifier, network):
        super().__init__(identifier, network)
        self.received = []
        self.on("msg", lambda m: self.received.append((self.network.scheduler.now, m.sender)))


def corporate() -> Topology:
    return parse_topology("corporate")


class TestPlacement:
    def test_deterministic_and_in_range(self):
        topo = corporate()
        for identifier in (0, 1, 0xDEADBEEF, (1 << 160) - 1):
            site, rack = topo.place(identifier)
            assert (site, rack) == topo.place(identifier)
            assert 0 <= site < topo.sites
            assert 0 <= rack < topo.racks_per_site

    def test_same_placement_across_instances(self):
        a, b = corporate(), corporate()
        for identifier in range(100):
            assert a.place(identifier) == b.place(identifier)

    def test_placement_independent_of_low_bits(self):
        # The sharded engine keys sub-cubes off the low identifier bits; if
        # placement depended on them, every shard would collapse onto one
        # site.  Machines differing only in the low 2 bits must still
        # scatter across sites.
        topo = corporate()
        base = 0xABCDEF << 8
        sites = {topo.place(base | low)[0] for low in range(4)}
        assert len(sites) > 1

    def test_high_bits_matter(self):
        # 160-bit identifiers: bits above 64 must influence placement.
        topo = corporate()
        placements = {topo.place(1 << shift) for shift in (0, 70, 150)}
        assert len(placements) > 1

    def test_one_site_places_everything_together(self):
        topo = one_site()
        assert {topo.place(i) for i in range(50)} == {(0, 0)}


class TestLinks:
    def test_link_classes_by_relative_position(self):
        topo = Topology(sites=3, racks_per_site=3)
        ids = range(200)
        seen = set()
        for a in ids:
            for b in ids:
                name, cls = topo.link(a, b)
                seen.add(cls.name)
                site_a, rack_a = topo.place(a)
                site_b, rack_b = topo.place(b)
                if site_a != site_b:
                    assert cls.name == "wan"
                    lo, hi = sorted((site_a, site_b))
                    assert name == f"wan:{lo}-{hi}"
                elif rack_a != rack_b:
                    assert (name, cls.name) == (f"lan:{site_a}", "lan")
                else:
                    assert (name, cls.name) == (f"rack:{site_a}.{rack_a}", "rack")
        assert seen == {"rack", "lan", "wan"}

    def test_link_is_symmetric(self):
        topo = corporate()
        for a, b in [(3, 77), (12, 150), (0, 1)]:
            assert topo.link(a, b) == topo.link(b, a)

    def test_delay_is_ticks_times_quantum(self):
        topo = Topology(sites=2, racks_per_site=1, wan_ticks=10, quantum=0.5)
        a, b = 0, next(
            i for i in range(1, 100) if topo.place(i)[0] != topo.place(0)[0]
        )
        assert topo.delay_ticks(a, b) == 10
        assert topo.delay(a, b) == 5.0

    def test_link_names_enumerate_the_topology(self):
        topo = Topology(sites=2, racks_per_site=2)
        names = topo.link_names()
        assert set(names) == {
            "rack:0.0", "rack:0.1", "rack:1.0", "rack:1.1",
            "lan:0", "lan:1", "wan:0-1",
        }

    def test_wan_links_filter_by_site(self):
        topo = Topology(sites=3)
        assert topo.wan_links() == ["wan:0-1", "wan:0-2", "wan:1-2"]
        assert topo.wan_links(site=1) == ["wan:0-1", "wan:1-2"]

    def test_validate_links_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown topology links"):
            corporate().validate_links(["wan:0-9"])

    def test_link_class_needs_positive_ticks(self):
        with pytest.raises(ValueError, match="latency_ticks"):
            LinkClass("rack", 0, "x")


class TestUniformity:
    def test_one_site_is_uniform(self):
        assert one_site().is_uniform()
        assert one_site(0.25).uniform_latency() == 0.25

    def test_mixed_classes_not_uniform(self):
        assert not corporate().is_uniform()
        assert not parse_topology("campus").is_uniform()
        with pytest.raises(ValueError, match="not uniform"):
            corporate().uniform_ticks()

    def test_unreachable_classes_do_not_break_uniformity(self):
        # Single rack per site: the lan class can never occur, so only
        # rack and wan ticks need to agree.
        topo = Topology(sites=2, racks_per_site=1, rack_ticks=3, lan_ticks=99, wan_ticks=3)
        assert topo.is_uniform()
        assert topo.uniform_ticks() == 3


class TestParse:
    def test_flat_forms(self):
        for spec in (None, "", "  ", "none", "flat", "NONE"):
            assert parse_topology(spec) is None

    def test_presets(self):
        assert topology_presets() == ["campus", "corporate", "one-site"]
        topo = parse_topology("corporate")
        assert (topo.sites, topo.racks_per_site) == (4, 4)
        assert parse_topology("one-site").is_uniform()

    def test_custom_spec(self):
        topo = parse_topology("sites=2,racks=3,rack=2,lan=4,wan=20,quantum=0.5")
        assert (topo.sites, topo.racks_per_site) == (2, 3)
        assert topo.rack_class.latency_ticks == 2
        assert topo.lan_class.latency_ticks == 4
        assert topo.wan_class.latency_ticks == 20
        assert topo.quantum == 0.5

    def test_preset_with_overrides(self):
        topo = parse_topology("corporate,wan=20")
        assert topo.wan_class.latency_ticks == 20
        assert (topo.sites, topo.racks_per_site) == (4, 4)

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown topology preset"):
            parse_topology("galaxy")
        with pytest.raises(ValueError, match="unknown topology key"):
            parse_topology("hops=3")
        with pytest.raises(ValueError, match="bad value"):
            parse_topology("sites=many")
        with pytest.raises(ValueError, match="must come first"):
            parse_topology("wan=20,corporate")


def topo_net(topo, **kwargs):
    return Network(EventScheduler(), rng=random.Random(1), topology=topo, **kwargs)


def pick_pair(topo, wanted):
    """Two registrable ids joined by a link of class *wanted*."""
    for a in range(200):
        for b in range(a + 1, 200):
            if topo.link(a, b)[1].name == wanted:
                return a, b
    raise AssertionError(f"no {wanted} pair in 200 ids")


class TestNetworkTopology:
    def test_jitter_rejected_with_topology(self):
        with pytest.raises(ValueError, match="jitter"):
            Network(EventScheduler(), jitter=0.5, topology=one_site())

    def test_per_pair_delay_from_link_class(self):
        topo = Topology(sites=2, racks_per_site=1, rack_ticks=1, wan_ticks=10)
        net = topo_net(topo)
        a, b = pick_pair(topo, "wan")
        pa, pb = Probe(a, net), Probe(b, net)
        pa.send(b, "msg")
        net.run()
        assert pb.received == [(10.0, a)]

    def test_class_counters_track_sends(self):
        topo = corporate()
        net = topo_net(topo)
        a, b = pick_pair(topo, "wan")
        c, d = pick_pair(topo, "rack")
        machines = {i: Probe(i, net) for i in {a, b, c, d}}
        machines[a].send(b, "msg")
        machines[c].send(d, "msg")
        net.run()
        assert net.class_sent == {"wan": 1, "rack": 1}
        assert net.class_delivered == {"wan": 1, "rack": 1}
        assert net.class_dropped == {}

    def test_flat_network_keeps_counters_empty(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        a.send(2, "msg")
        net.run()
        assert net.class_sent == {}

    def test_equal_nominal_delays_share_one_batch(self):
        # The satellite-2 regression: delivery windows are keyed by integer
        # tick, so two same-class sends issued together occupy one pending
        # batch (one scheduler event), never two float-keyed near-twins.
        topo = one_site(0.1)
        net = topo_net(topo)
        a, b, c = Probe(1, net), Probe(2, net), Probe(3, net)
        a.send(2, "msg")
        a.send(3, "msg")
        assert list(net._pending) == [1]
        assert len(net._pending[1]) == 2
        net.run()
        assert b.received == [(0.1, 1)] and c.received == [(0.1, 1)]

    def test_chained_hops_do_not_accumulate_float_drift(self):
        # Ten 0.1-quantum hops: summing floats gives 0.9999999999999999,
        # tick * quantum gives exactly 1.0.  The handler-relay chain is the
        # adversarial case -- every hop re-derives "now" mid-delivery.
        topo = one_site(0.1)
        net = topo_net(topo)

        class Relay(SimMachine):
            def __init__(self, identifier, network):
                super().__init__(identifier, network)
                self.on("hop", self._hop)

            def _hop(self, message):
                if message.payload < 10:
                    self.send(message.sender, "hop", message.payload + 1)

        a, b = Relay(1, net), Relay(2, net)
        a.send(2, "hop", 1)
        net.run()
        assert sum(0.1 for _ in range(10)) != 1.0  # the drift being guarded
        assert net.scheduler.now == 1.0

    def test_driver_send_from_quiescence_lands_on_next_tick(self):
        topo = one_site(0.5)
        net = topo_net(topo)
        a, b = Probe(1, net), Probe(2, net)
        a.send(2, "msg")
        net.run()
        a.send(2, "msg")  # from quiescence at t=0.5: tick recovered by rounding
        net.run()
        assert b.received == [(0.5, 1), (1.0, 1)]


class TestCuts:
    def test_cut_requires_topology(self):
        with pytest.raises(ValueError, match="requires a Network with a topology"):
            Network(EventScheduler()).cut("wan:0-1")

    def test_cut_validates_link_names(self):
        net = topo_net(corporate())
        with pytest.raises(ValueError, match="unknown topology links"):
            net.cut("wan:0-99")

    def test_cut_drops_and_counts(self):
        topo = corporate()
        net = topo_net(topo)
        a, b = pick_pair(topo, "wan")
        pa, pb = Probe(a, net), Probe(b, net)
        net.cut(topo.link(a, b)[0])
        pa.send(b, "msg")
        net.run()
        assert pb.received == []
        assert net.messages_dropped == 1
        assert net.class_dropped == {"wan": 1}
        assert net.class_sent == {"wan": 1}  # counted as sent, then dropped

    def test_cuts_compose_and_heal_independently(self):
        topo = corporate()
        net = topo_net(topo)
        net.cut("wan:0-1")
        net.cut("wan:0-2", "wan:0-3")
        assert net.severed_links() == {"wan:0-1", "wan:0-2", "wan:0-3"}
        net.heal("wan:0-2")
        assert net.severed_links() == {"wan:0-1", "wan:0-3"}
        net.heal()
        assert net.severed_links() == set()

    def test_cut_severs_in_flight_messages(self):
        # Like partitions, cuts are re-checked at delivery time.
        topo = corporate()
        net = topo_net(topo)
        a, b = pick_pair(topo, "wan")
        pa, pb = Probe(a, net), Probe(b, net)
        pa.send(b, "msg")
        net.cut(topo.link(a, b)[0])
        net.run()
        assert pb.received == []
        assert net.messages_dropped == 1

    def test_heal_partition_clears_cuts_too(self):
        net = topo_net(corporate())
        net.cut("wan:0-1")
        net.heal_partition()
        assert net.severed_links() == set()

    def test_cut_composes_with_flat_partition(self):
        topo = corporate()
        net = topo_net(topo)
        a, b = pick_pair(topo, "rack")  # same rack: no cut can touch them
        pa, pb = Probe(a, net), Probe(b, net)
        net.cut(*topo.wan_links())
        net.partition({"island": [b]})
        pa.send(b, "msg")
        net.run()
        assert pb.received == []  # dropped by the label partition
        net.heal_partition()
        pa.send(b, "msg")
        net.run()
        assert pb.received != []


class TestOneSiteFlatIdentity:
    """The degenerate topology reproduces flat-fabric traces bit-identically."""

    LEAVES = 24

    def _drive(self, topology):
        salad = Salad(SaladConfig(dimensions=2, seed=7, topology=topology))
        salad.build(self.LEAVES)
        leaf_ids = salad.alive_identifiers()
        batches = {
            leaf_ids[i % len(leaf_ids)]: [
                SaladRecord(
                    fingerprint=synthetic_fingerprint(1000 + j, j % 20),
                    location=leaf_ids[i % len(leaf_ids)],
                )
                for j in range(i, 80, len(leaf_ids))
            ]
            for i in range(len(leaf_ids))
        }
        salad.insert_records(batches)
        return salad

    def test_trace_identity(self):
        flat = self._drive(None)
        topo = self._drive(one_site())
        assert topo.stored_records() == flat.stored_records()
        assert topo.message_totals() == flat.message_totals()
        assert topo.network.messages_sent == flat.network.messages_sent
        assert topo.network.messages_delivered == flat.network.messages_delivered
        assert topo.network.scheduler.now == flat.network.scheduler.now
