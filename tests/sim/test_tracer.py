"""Message tracing and protocol-invariant checks over real SALAD runs."""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.sim.tracer import NetworkTracer


@pytest.fixture(scope="module")
def traced_salad():
    salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=51))
    tracer = NetworkTracer(salad.network)
    salad.build(60)
    rng = random.Random(1)
    leaves = salad.alive_leaves()
    batches = {}
    for i in range(300):
        leaf = rng.choice(leaves)
        record = SaladRecord(synthetic_fingerprint(4096 + i, i), leaf.identifier)
        batches.setdefault(leaf.identifier, []).append(record)
    salad.insert_records(batches)
    return salad, tracer


class TestTracing:
    def test_all_kinds_recorded(self, traced_salad):
        _, tracer = traced_salad
        kinds = tracer.count_by_kind()
        assert kinds.get("join", 0) > 0
        assert kinds.get("welcome", 0) > 0
        assert kinds.get("record", 0) > 0

    def test_trace_matches_network_totals(self, traced_salad):
        salad, tracer = traced_salad
        assert len(tracer.messages) == salad.network.messages_sent

    def test_detach_stops_recording(self):
        salad = Salad(SaladConfig(seed=52))
        tracer = NetworkTracer(salad.network)
        salad.build(5)
        recorded = len(tracer.messages)
        tracer.detach()
        salad.add_leaf()
        assert len(tracer.messages) == recorded


class TestInvariants:
    def test_record_hop_bound_holds(self, traced_salad):
        salad, tracer = traced_salad
        assert tracer.check_record_hop_bound(salad.config.dimensions) == []

    def test_join_suppression_holds(self, traced_salad):
        _, tracer = traced_salad
        assert tracer.check_join_suppression() == []

    def test_traffic_conservation_holds(self, traced_salad):
        _, tracer = traced_salad
        assert tracer.check_traffic_conservation() == []

    def test_record_progress_under_uniform_widths(self):
        """Force every leaf to one width: forwarding must make progress."""
        salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=53))
        salad.build(50)
        target = max(
            salad.width_distribution(), key=lambda w: salad.width_distribution()[w]
        )
        for leaf in salad.alive_leaves():
            leaf.width = target
            leaf._rebuild_index()
        tracer = NetworkTracer(salad.network)
        rng = random.Random(2)
        leaves = salad.alive_leaves()
        batches = {}
        for i in range(200):
            leaf = rng.choice(leaves)
            record = SaladRecord(
                synthetic_fingerprint(2048 + i, 900_000 + i), leaf.identifier
            )
            batches.setdefault(leaf.identifier, []).append(record)
        salad.insert_records(batches)
        assert tracer.check_record_progress(salad.leaves) == []
        assert tracer.check_record_hop_bound(2) == []
