"""Seed sequences: reproducible, independent named streams."""

from repro.sim.rng import SeedSequence


class TestSeedSequence:
    def test_same_name_same_stream(self):
        assert SeedSequence(1).stream("a").random() == SeedSequence(1).stream("a").random()

    def test_different_names_different_streams(self):
        seeds = SeedSequence(1)
        assert seeds.stream("a").random() != seeds.stream("b").random()

    def test_different_masters_different_streams(self):
        assert SeedSequence(1).stream("a").random() != SeedSequence(2).stream("a").random()

    def test_child_sequences_are_namespaced(self):
        seeds = SeedSequence(7)
        child_a = seeds.child("x")
        child_b = seeds.child("y")
        assert child_a.stream("s").random() != child_b.stream("s").random()

    def test_derive_is_stable(self):
        assert SeedSequence(3).derive("k") == SeedSequence(3).derive("k")
