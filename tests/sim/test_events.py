"""The discrete-event schedulers.

The whole contract suite runs against both engines -- the calendar-queue
:class:`EventScheduler` and the heap-based :class:`ReferenceEventScheduler`
oracle -- via the ``sched_cls`` fixture; the :class:`TestCalendarQueueEdges`
cases target bucket/heap interactions specific to the calendar engine.
"""

import pytest

from repro.sim.events import EventScheduler, ReferenceEventScheduler, SimulationError


@pytest.fixture(params=[EventScheduler, ReferenceEventScheduler])
def sched_cls(request):
    return request.param


class TestScheduling:
    def test_runs_in_time_order(self, sched_cls):
        sched = sched_cls()
        log = []
        sched.schedule(3.0, lambda: log.append("c"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.schedule(2.0, lambda: log.append("b"))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self, sched_cls):
        sched = sched_cls()
        log = []
        for tag in "abc":
            sched.schedule(1.0, lambda t=tag: log.append(t))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sched_cls):
        sched = sched_cls()
        seen = []
        sched.schedule(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0]
        assert sched.now == 5.0

    def test_events_can_schedule_events(self, sched_cls):
        sched = sched_cls()
        log = []

        def first():
            log.append("first")
            sched.schedule(1.0, lambda: log.append("second"))

        sched.schedule(1.0, first)
        sched.run()
        assert log == ["first", "second"]
        assert sched.now == 2.0

    def test_negative_delay_rejected(self, sched_cls):
        with pytest.raises(SimulationError):
            sched_cls().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self, sched_cls):
        sched = sched_cls()
        log = []
        sched.schedule_at(4.0, lambda: log.append(sched.now))
        sched.run()
        assert log == [4.0]


class TestRunLimits:
    def test_until_stops_before_later_events(self, sched_cls):
        sched = sched_cls()
        log = []
        sched.schedule(1.0, lambda: log.append(1))
        sched.schedule(10.0, lambda: log.append(10))
        sched.run(until=5.0)
        assert log == [1]
        assert sched.now == 5.0
        sched.run()
        assert log == [1, 10]

    def test_max_events(self, sched_cls):
        sched = sched_cls()
        log = []
        for i in range(5):
            sched.schedule(float(i + 1), lambda i=i: log.append(i))
        executed = sched.run(max_events=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_run_returns_count(self, sched_cls):
        sched = sched_cls()
        for i in range(4):
            sched.schedule(1.0, lambda: None)
        assert sched.run() == 4


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sched_cls):
        sched = sched_cls()
        log = []
        handle = sched.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sched.run()
        assert log == []
        assert handle.cancelled

    def test_len_ignores_cancelled(self, sched_cls):
        sched = sched_cls()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(sched) == 1

    def test_step_skips_cancelled(self, sched_cls):
        sched = sched_cls()
        log = []
        sched.schedule(1.0, lambda: log.append("a")).cancel()
        sched.schedule(2.0, lambda: log.append("b"))
        assert sched.step() is True
        assert log == ["b"]


class TestCalendarQueueEdges:
    """Bucket/heap interactions specific to the calendar-queue engine."""

    def test_zero_delay_during_drain_runs_same_timestep(self):
        # Scheduling with delay 0 from inside an event must append behind
        # the active bucket's cursor and run before any later timestamp.
        sched = EventScheduler()
        log = []

        def first():
            log.append("first")
            sched.schedule(0.0, lambda: log.append("chained"))

        sched.schedule(1.0, first)
        sched.schedule(2.0, lambda: log.append("later"))
        sched.run()
        assert log == ["first", "chained", "later"]

    def test_earlier_schedule_after_until_peek(self):
        # run(until=...) peeks at a future bucket without advancing now;
        # an event then scheduled at an *earlier* absolute time must still
        # run first (regression test for the active-bucket cache: the cache
        # is only valid while its timestamp is the heap minimum).
        sched = EventScheduler()
        log = []
        sched.schedule(10.0, lambda: log.append("late"))
        sched.run(until=5.0)  # peeks the t=10 bucket, executes nothing
        assert sched.now == 5.0
        sched.schedule(1.0, lambda: log.append("early"))  # t=6 < 10
        sched.run()
        assert log == ["early", "late"]

    def test_bucket_reuse_after_drain(self):
        # A timestamp whose bucket drained and was retired can be reused by
        # a later schedule that lands on the same float value; the heap may
        # briefly hold duplicate entries (lazy deletion) but every event
        # still runs exactly once in order.
        sched = EventScheduler()
        log = []
        sched.schedule(2.0, lambda: log.append("a"))
        sched.run()
        assert sched.now == 2.0
        sched.schedule(0.0, lambda: log.append("b"))  # recreates the t=2 bucket
        sched.schedule(1.0, lambda: log.append("c"))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_all_cancelled_bucket_is_skipped(self):
        sched = EventScheduler()
        log = []
        for _ in range(3):
            sched.schedule(1.0, lambda: log.append("x")).cancel()
        sched.schedule(2.0, lambda: log.append("kept"))
        assert sched.run() == 1
        assert log == ["kept"]
        assert len(sched) == 0

    def test_interleaved_engines_agree_on_random_workload(self):
        # Drive both engines through an identical pseudo-random schedule of
        # nested events and cancellations; logs must match exactly.
        import random

        def drive(cls):
            rng = random.Random(42)
            sched = cls()
            log = []
            handles = []

            def make(tag, depth):
                def action():
                    log.append((tag, sched.now))
                    if depth < 3:
                        for k in range(rng.randrange(3)):
                            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5])
                            handles.append(
                                sched.schedule(delay, make(f"{tag}.{k}", depth + 1))
                            )
                    if handles and rng.random() < 0.3:
                        handles[rng.randrange(len(handles))].cancel()

                return action

            for i in range(20):
                sched.schedule(rng.choice([0.0, 1.0, 1.0, 3.0]), make(str(i), 0))
            sched.run(max_events=5000)
            return log

        assert drive(EventScheduler) == drive(ReferenceEventScheduler)
