"""The discrete-event scheduler."""

import pytest

from repro.sim.events import EventScheduler, SimulationError


class TestScheduling:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        log = []
        sched.schedule(3.0, lambda: log.append("c"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.schedule(2.0, lambda: log.append("b"))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sched = EventScheduler()
        log = []
        for tag in "abc":
            sched.schedule(1.0, lambda t=tag: log.append(t))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0]
        assert sched.now == 5.0

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        log = []

        def first():
            log.append("first")
            sched.schedule(1.0, lambda: log.append("second"))

        sched.schedule(1.0, first)
        sched.run()
        assert log == ["first", "second"]
        assert sched.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        sched = EventScheduler()
        log = []
        sched.schedule(1.0, lambda: log.append(1))
        sched.schedule(10.0, lambda: log.append(10))
        sched.run(until=5.0)
        assert log == [1]
        assert sched.now == 5.0
        sched.run()
        assert log == [1, 10]

    def test_max_events(self):
        sched = EventScheduler()
        log = []
        for i in range(5):
            sched.schedule(float(i + 1), lambda i=i: log.append(i))
        executed = sched.run(max_events=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_run_returns_count(self):
        sched = EventScheduler()
        for i in range(4):
            sched.schedule(1.0, lambda: None)
        assert sched.run() == 4


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sched = EventScheduler()
        log = []
        handle = sched.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sched.run()
        assert log == []
        assert handle.cancelled

    def test_len_ignores_cancelled(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(sched) == 1

    def test_step_skips_cancelled(self):
        sched = EventScheduler()
        log = []
        sched.schedule(1.0, lambda: log.append("a")).cancel()
        sched.schedule(2.0, lambda: log.append("b"))
        assert sched.step() is True
        assert log == ["b"]
