"""The message-passing network: delivery, counters, loss, failure drops."""

import random

import pytest

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine
from repro.sim.network import Network


class Echo(SimMachine):
    """Test machine that logs pings and answers with pongs."""

    def __init__(self, identifier, network):
        super().__init__(identifier, network)
        self.log = []
        self.on("ping", self._ping)
        self.on("pong", lambda msg: self.log.append(("pong", msg.sender)))

    def _ping(self, msg):
        self.log.append(("ping", msg.sender))
        self.send(msg.sender, "pong")


def make_net(loss=0.0):
    return Network(EventScheduler(), latency=1.0, loss_probability=loss, rng=random.Random(1))


class TestDelivery:
    def test_roundtrip(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        a.send(2, "ping")
        net.run()
        assert b.log == [("ping", 1)]
        assert a.log == [("pong", 2)]

    def test_traffic_counters(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        a.send(2, "ping")
        net.run()
        assert net.traffic[1].sent == 1 and net.traffic[1].received == 1
        assert net.traffic[2].sent == 1 and net.traffic[2].received == 1
        assert net.traffic[1].total == 2
        assert net.traffic[1].by_kind_sent == {"ping": 1}
        assert net.traffic[2].by_kind_received == {"ping": 1}

    def test_latency_orders_delivery(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        a.send(2, "ping")
        assert b.log == []  # not yet delivered
        net.run()
        assert b.log


class TestDrops:
    def test_message_to_unknown_machine_dropped(self):
        net = make_net()
        a = Echo(1, net)
        a.send(99, "ping")
        net.run()
        assert net.messages_dropped == 1
        assert net.traffic[1].dropped_to == 1

    def test_message_to_failed_machine_dropped(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        b.fail()
        a.send(2, "ping")
        net.run()
        assert b.log == []
        assert net.messages_dropped == 1

    def test_failed_machine_sends_nothing(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        a.fail()
        a.send(2, "ping")
        net.run()
        assert b.log == []
        assert net.messages_sent == 0

    def test_recovered_machine_receives_again(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        b.fail()
        b.recover()
        a.send(2, "ping")
        net.run()
        assert b.log == [("ping", 1)]

    def test_departed_machine_deregistered(self):
        net = make_net()
        a, b = Echo(1, net), Echo(2, net)
        b.depart()
        assert net.machine(2) is None
        a.send(2, "ping")
        net.run()
        assert net.messages_dropped == 1


class TestLoss:
    def test_loss_probability_one_drops_everything(self):
        net = make_net(loss=1.0)
        a, b = Echo(1, net), Echo(2, net)
        for _ in range(20):
            a.send(2, "ping")
        net.run()
        assert b.log == []
        assert net.messages_dropped == 20

    def test_loss_probability_statistics(self):
        net = make_net(loss=0.5)
        a, b = Echo(1, net), Echo(2, net)
        for _ in range(400):
            net.send(1, 2, "ping", None)
        net.run()
        delivered = len(b.log)
        assert 140 < delivered < 260  # ~200 +- 3 sigma

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            Network(EventScheduler(), loss_probability=1.5)


class TestLossSubstream:
    """Loss draws come from a dedicated substream, and both the jitter and
    loss draws happen before any drop decision, so the delivery timestamps
    of surviving messages are pinned: identical across runs that differ
    only in loss probability or partition layout.  (With a shared stream,
    enabling loss shifted every subsequent jitter draw, making lossy and
    lossless traces incomparable.)"""

    @staticmethod
    def _delivery_times(loss=0.0, partition=None):
        net = Network(
            EventScheduler(),
            latency=1.0,
            jitter=0.5,
            loss_probability=loss,
            rng=random.Random(7),
        )
        received = {}

        class Stamp(SimMachine):
            def __init__(self, identifier, network):
                super().__init__(identifier, network)
                self.on(
                    "tag",
                    lambda msg: received.setdefault(msg.payload, net.scheduler.now),
                )

        Stamp(1, net), Stamp(2, net), Stamp(3, net)
        if partition:
            net.partition(partition)
        for i in range(200):
            net.send(1, 2 if i % 2 else 3, "tag", i)
        net.run()
        return received

    def test_loss_pins_surviving_delivery_times(self):
        lossless = self._delivery_times()
        lossy = self._delivery_times(loss=0.4)
        assert 0 < len(lossy) < len(lossless)
        assert all(lossless[tag] == time for tag, time in lossy.items())

    def test_partition_pins_surviving_delivery_times(self):
        connected = self._delivery_times()
        cut = self._delivery_times(partition={"island": [3]})
        assert sorted(cut) == [tag for tag in sorted(connected) if tag % 2]
        assert all(connected[tag] == time for tag, time in cut.items())

    def test_loss_seed_independent_of_jitter_consumption(self):
        # Same main rng seed, jitter on vs. off: the loss pattern (which
        # tags die) must be identical, because loss never reads the main
        # stream after construction.
        def survivors(jitter):
            net = Network(
                EventScheduler(),
                latency=1.0,
                jitter=jitter,
                loss_probability=0.4,
                rng=random.Random(7),
            )
            log = []

            class Sink(SimMachine):
                def __init__(self, identifier, network):
                    super().__init__(identifier, network)
                    self.on("tag", lambda msg: log.append(msg.payload))

            Sink(1, net), Sink(2, net)
            for i in range(200):
                net.send(1, 2, "tag", i)
            net.run()
            return sorted(log)

        assert survivors(0.0) == survivors(0.5)


class TestRegistration:
    def test_duplicate_identifier_rejected(self):
        net = make_net()
        Echo(1, net)
        with pytest.raises(ValueError):
            Echo(1, net)


class TestDeliveryBatching:
    """Per-timestep batching must be invisible relative to per-message mode."""

    def test_batched_and_unbatched_deliver_identically(self):
        def drive(batch):
            net = Network(
                EventScheduler(),
                latency=1.0,
                rng=random.Random(1),
                batch_delivery=batch,
            )
            a, b, c = Echo(1, net), Echo(2, net), Echo(3, net)
            a.send(2, "ping")
            a.send(3, "ping")
            b.send(3, "ping")
            net.run()
            return a.log, b.log, c.log, net.messages_delivered

        assert drive(True) == drive(False)

    def test_one_scheduler_event_per_timestep(self):
        net = Network(EventScheduler(), latency=1.0, rng=random.Random(1))
        a, b = Echo(1, net), Echo(2, net)
        for _ in range(10):
            net.send(1, 2, "ping", None)
        # All ten messages share the t=1 delivery timestep: one flush event.
        assert len(net.scheduler) == 1
        net.run()
        assert len(b.log) == 10

    def test_jitter_splits_timesteps(self):
        net = Network(
            EventScheduler(), latency=1.0, jitter=0.5, rng=random.Random(1)
        )
        Echo(1, net)
        b = Echo(2, net)
        for _ in range(5):
            net.send(1, 2, "ping", None)
        net.run()
        assert len(b.log) == 5

    def test_batch_send_order_preserved(self):
        net = Network(EventScheduler(), latency=1.0, rng=random.Random(1))
        received = []

        class Collector(SimMachine):
            def __init__(self, identifier, network):
                super().__init__(identifier, network)
                self.on("tag", lambda msg: received.append(msg.payload))

        Collector(1, net)
        Collector(2, net)
        for i in range(8):
            net.send(1, 2, "tag", i)
        net.run()
        assert received == list(range(8))
