"""SimMachine dispatch and lifecycle."""

import pytest

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine, UnknownMessageError
from repro.sim.network import Network


def make_machine():
    net = Network(EventScheduler())
    return SimMachine(7, net), net


class TestDispatch:
    def test_handler_called_with_message(self):
        machine, net = make_machine()
        seen = []
        machine.on("hello", lambda msg: seen.append(msg.payload))
        other = SimMachine(8, net)
        other.send(7, "hello", {"k": 1})
        net.run()
        assert seen == [{"k": 1}]

    def test_unknown_kind_raises(self):
        machine, net = make_machine()
        other = SimMachine(8, net)
        other.send(7, "mystery")
        with pytest.raises(UnknownMessageError):
            net.run()

    def test_dead_machine_ignores_messages(self):
        machine, net = make_machine()
        seen = []
        machine.on("hello", lambda msg: seen.append(1))
        other = SimMachine(8, net)
        other.send(7, "hello")
        machine.fail()  # fails after send, before delivery
        net.run()
        assert seen == []


class TestLifecycle:
    def test_traffic_property(self):
        machine, net = make_machine()
        assert machine.traffic.total == 0

    def test_repr_shows_state(self):
        machine, net = make_machine()
        assert "up" in repr(machine)
        machine.fail()
        assert "down" in repr(machine)
