"""Failure injection helpers."""

import random

import pytest

from repro.sim.events import EventScheduler
from repro.sim.failure import ChurnSchedule, fail_exact_fraction, fail_randomly
from repro.sim.machine import SimMachine
from repro.sim.network import Network


def make_machines(count):
    net = Network(EventScheduler())
    return [SimMachine(i + 1, net) for i in range(count)], net


class TestFailRandomly:
    def test_probability_zero_fails_none(self):
        machines, _ = make_machines(20)
        assert fail_randomly(machines, 0.0, random.Random(1)) == []
        assert all(m.alive for m in machines)

    def test_probability_one_fails_all(self):
        machines, _ = make_machines(20)
        failed = fail_randomly(machines, 1.0, random.Random(1))
        assert len(failed) == 20
        assert not any(m.alive for m in machines)

    def test_invalid_probability(self):
        machines, _ = make_machines(2)
        with pytest.raises(ValueError):
            fail_randomly(machines, 1.5, random.Random(1))


class TestFailExactFraction:
    def test_exact_count(self):
        machines, _ = make_machines(40)
        failed = fail_exact_fraction(machines, 0.25, random.Random(2))
        assert len(failed) == 10
        assert sum(1 for m in machines if not m.alive) == 10

    def test_deterministic_for_seed(self):
        machines_a, _ = make_machines(10)
        machines_b, _ = make_machines(10)
        failed_a = fail_exact_fraction(machines_a, 0.5, random.Random(3))
        failed_b = fail_exact_fraction(machines_b, 0.5, random.Random(3))
        assert [m.identifier for m in failed_a] == [m.identifier for m in failed_b]


class TestChurnSchedule:
    def test_scheduled_fail_and_recover(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "fail", machines[0])
        churn.at(2.0, "recover", machines[0])
        net.scheduler.run(until=1.5)
        assert not machines[0].alive
        net.scheduler.run()
        assert machines[0].alive
        assert [e.action for e in churn.history] == ["fail", "recover"]

    def test_depart_removes_from_network(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "depart", machines[0])
        net.scheduler.run()
        assert net.machine(machines[0].identifier) is None

    def test_unknown_action_rejected(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "explode", machines[0])
        with pytest.raises(ValueError):
            net.scheduler.run()

    def test_poisson_failures_rate(self):
        machines, net = make_machines(50)
        churn = ChurnSchedule(net.scheduler)
        scheduled = churn.poisson_failures(
            machines, rate=0.1, horizon=100.0, rng=random.Random(5)
        )
        # Expect ~50 machines * 0.1 * 100 = 500 failures, +-4 sigma.
        assert 400 < scheduled < 600


class TestCrashRecoveryHarness:
    """Kill machines mid-run, rejoin from disk, measure the recovered fraction."""

    @staticmethod
    def _populated_salad(backend, db_dir, leaves=8, records_per_leaf=60, seed=7):
        from repro.core.fingerprint import synthetic_fingerprint
        from repro.salad.records import SaladRecord
        from repro.salad.salad import Salad, SaladConfig

        salad = Salad(SaladConfig(seed=seed, db_backend=backend, db_dir=db_dir))
        members = [salad.add_leaf() for _ in range(leaves)]
        rng = random.Random(seed)
        batches = {
            leaf.identifier: [
                SaladRecord(
                    fingerprint=synthetic_fingerprint(
                        rng.randrange(1, 1 << 20), rng.randrange(1 << 30)
                    ),
                    location=leaf.identifier,
                )
                for _ in range(records_per_leaf)
            ]
            for leaf in members
        }
        salad.insert_records(batches)
        return salad, members

    @pytest.mark.parametrize("backend", ["sqlite", "wal"])
    def test_durable_backends_recover_all_settled_records(self, backend, tmp_path):
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = self._populated_salad(backend, tmp_path)
        victims = members[:3]
        before = {leaf.identifier: len(leaf.database) for leaf in victims}
        harness = CrashRecoveryHarness()
        harness.crash(victims)
        assert all(not leaf.alive for leaf in victims)
        report = harness.rejoin()
        assert all(leaf.alive for leaf in victims)
        # insert_records settled, so every record had reached disk: the
        # durability prediction is 100% and recovery must meet it.
        assert report.records_before == sum(before.values()) > 0
        assert report.predicted_fraction == 1.0
        assert report.recovered_fraction == 1.0
        assert report.meets_prediction
        for leaf in victims:
            assert len(leaf.database) == before[leaf.identifier]
        salad.close_databases()

    @pytest.mark.parametrize("backend", ["sqlite", "wal"])
    def test_unflushed_tail_is_lost_but_prediction_still_met(self, backend, tmp_path):
        from repro.core.fingerprint import synthetic_fingerprint
        from repro.salad.records import SaladRecord
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = self._populated_salad(backend, tmp_path)
        victim = members[0]
        settled = len(victim.database)
        rng = random.Random(99)
        for _ in range(10):  # direct inserts: applied but never flushed
            victim.database.insert(
                SaladRecord(
                    fingerprint=synthetic_fingerprint(
                        rng.randrange(1, 1 << 20), rng.randrange(1 << 30)
                    ),
                    location=victim.identifier,
                )
            )
        harness = CrashRecoveryHarness()
        (info,) = harness.crash([victim])
        assert info.records_before == settled + 10
        report = harness.rejoin()
        assert report.records_recovered == settled
        assert report.meets_prediction
        assert 0.0 < report.predicted_fraction < 1.0
        salad.close_databases()

    def test_memory_backend_recovers_nothing(self, tmp_path):
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = self._populated_salad("memory", tmp_path)
        harness = CrashRecoveryHarness()
        harness.crash(members[:2])
        report = harness.rejoin()
        assert report.records_before > 0
        assert report.records_recovered == 0
        assert report.predicted_fraction == 0.0
        assert report.meets_prediction  # 0 >= 0: memory predicts no durability

    def test_rejoined_leaf_serves_inserts_again(self, tmp_path):
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = self._populated_salad("wal", tmp_path)
        victim = members[0]
        harness = CrashRecoveryHarness()
        harness.crash([victim])
        harness.rejoin()
        salad.network.run()
        sizes = salad.database_sizes(alive_only=True)
        assert len(sizes) == len(members)
        salad.close_databases()


class TestReplicaSetKill:
    """Correlated outages: crash every host of a file's replica set."""

    def test_crash_replica_sets_kills_union_once(self, tmp_path):
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = TestCrashRecoveryHarness._populated_salad("wal", tmp_path)
        ids = [leaf.identifier for leaf in members]
        harness = CrashRecoveryHarness()
        # Overlapping sets: host ids[1] appears in both, crashes once.
        snapshots = harness.crash_replica_sets(
            salad.leaves, [[ids[0], ids[1]], [ids[1], ids[2]]]
        )
        assert len(snapshots) == 3
        assert harness.total_crashed_leaves == 3
        for identifier in ids[:3]:
            assert not salad.leaves[identifier].alive
        for identifier in ids[3:]:
            assert salad.leaves[identifier].alive
        report = harness.rejoin()
        assert report.crashed_leaves == 3
        assert report.meets_prediction
        salad.close_databases()

    def test_measured_loss_equals_analytic_prediction(self):
        from repro.sim.failure import measure_replica_loss

        availability = {1: 0.5, 2: 0.8, 3: 0.9}
        replica_hosts = {
            "doomed": [1, 2],  # entirely inside the outage
            "grazed": [2, 3],  # one survivor on host 3
            "safe": [3],
        }
        report = measure_replica_loss(replica_hosts, [1, 2], availability)
        assert report.files_at_risk == 1
        assert report.files_lost == 1
        assert report.matches_prediction
        assert report.lost_fraction == pytest.approx(1 / 3)
        # P(both dead hosts down) = (1-0.5)(1-0.8) = 0.1
        assert report.loss_event_probability == pytest.approx(0.1)

    def test_set_down_probability_is_complement_of_file_availability(self):
        from repro.farsite.placement import file_availability
        from repro.sim.failure import set_down_probability

        availability = {1: 0.35, 2: 0.72, 3: 0.91}
        hosts = [1, 2, 3]
        assert set_down_probability(hosts, availability) == pytest.approx(
            1.0 - file_availability(hosts, availability)
        )

    def test_kill_during_churn_with_durable_recovery(self, tmp_path):
        """Crash a replica set mid-churn; recovery must meet the prediction."""
        from repro.sim.failure import CrashRecoveryHarness

        salad, members = TestCrashRecoveryHarness._populated_salad(
            "sqlite", tmp_path
        )
        kill_set = [leaf.identifier for leaf in members[:2]]
        before = sum(len(salad.leaves[i].database) for i in kill_set)
        harness = CrashRecoveryHarness()
        harness.crash_replica_sets(salad.leaves, [kill_set])
        # Churn while the set is down: new leaves join the SALAD.
        for _ in range(2):
            salad.add_leaf()
        report = harness.rejoin()
        assert report.records_before == before > 0
        # insert_records settled pre-crash, so everything was durable.
        assert report.predicted_fraction == 1.0
        assert report.recovered_fraction == 1.0
        assert report.meets_prediction
        salad.close_databases()
