"""Failure injection helpers."""

import random

import pytest

from repro.sim.events import EventScheduler
from repro.sim.failure import ChurnSchedule, fail_exact_fraction, fail_randomly
from repro.sim.machine import SimMachine
from repro.sim.network import Network


def make_machines(count):
    net = Network(EventScheduler())
    return [SimMachine(i + 1, net) for i in range(count)], net


class TestFailRandomly:
    def test_probability_zero_fails_none(self):
        machines, _ = make_machines(20)
        assert fail_randomly(machines, 0.0, random.Random(1)) == []
        assert all(m.alive for m in machines)

    def test_probability_one_fails_all(self):
        machines, _ = make_machines(20)
        failed = fail_randomly(machines, 1.0, random.Random(1))
        assert len(failed) == 20
        assert not any(m.alive for m in machines)

    def test_invalid_probability(self):
        machines, _ = make_machines(2)
        with pytest.raises(ValueError):
            fail_randomly(machines, 1.5, random.Random(1))


class TestFailExactFraction:
    def test_exact_count(self):
        machines, _ = make_machines(40)
        failed = fail_exact_fraction(machines, 0.25, random.Random(2))
        assert len(failed) == 10
        assert sum(1 for m in machines if not m.alive) == 10

    def test_deterministic_for_seed(self):
        machines_a, _ = make_machines(10)
        machines_b, _ = make_machines(10)
        failed_a = fail_exact_fraction(machines_a, 0.5, random.Random(3))
        failed_b = fail_exact_fraction(machines_b, 0.5, random.Random(3))
        assert [m.identifier for m in failed_a] == [m.identifier for m in failed_b]


class TestChurnSchedule:
    def test_scheduled_fail_and_recover(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "fail", machines[0])
        churn.at(2.0, "recover", machines[0])
        net.scheduler.run(until=1.5)
        assert not machines[0].alive
        net.scheduler.run()
        assert machines[0].alive
        assert [e.action for e in churn.history] == ["fail", "recover"]

    def test_depart_removes_from_network(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "depart", machines[0])
        net.scheduler.run()
        assert net.machine(machines[0].identifier) is None

    def test_unknown_action_rejected(self):
        machines, net = make_machines(1)
        churn = ChurnSchedule(net.scheduler)
        churn.at(1.0, "explode", machines[0])
        with pytest.raises(ValueError):
            net.scheduler.run()

    def test_poisson_failures_rate(self):
        machines, net = make_machines(50)
        churn = ChurnSchedule(net.scheduler)
        scheduled = churn.poisson_failures(
            machines, rate=0.1, horizon=100.0, rng=random.Random(5)
        )
        # Expect ~50 machines * 0.1 * 100 = 500 failures, +-4 sigma.
        assert 400 < scheduled < 600
