"""Network partitions, including SALAD behavior across a partition."""

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine
from repro.sim.network import Network


class Probe(SimMachine):
    def __init__(self, identifier, network):
        super().__init__(identifier, network)
        self.received = []
        self.on("msg", lambda m: self.received.append(m.sender))


class TestPartitionMechanics:
    def test_cross_partition_messages_dropped(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        net.partition({"west": [1], "east": [2]})
        a.send(2, "msg")
        net.run()
        assert b.received == []
        assert net.messages_dropped == 1

    def test_same_partition_messages_flow(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        net.partition({"west": [1, 2], "east": []})
        a.send(2, "msg")
        net.run()
        assert b.received == [1]

    def test_unlabeled_machines_share_default_partition(self):
        net = Network(EventScheduler())
        a, b, c = Probe(1, net), Probe(2, net), Probe(3, net)
        net.partition({"island": [3]})
        a.send(2, "msg")
        a.send(3, "msg")
        net.run()
        assert b.received == [1]
        assert c.received == []

    def test_heal_restores_connectivity(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        net.partition({"west": [1], "east": [2]})
        net.heal_partition()
        a.send(2, "msg")
        net.run()
        assert b.received == [1]


class TestMidFlightPartition:
    """Partition membership is re-checked at delivery time.

    A partition that forms while a message is in flight must sever it --
    exactly as a machine that crashes while a message is in flight drops
    it.  The seed checked partitions at send time only, so these scenarios
    delivered messages across a cut that formed mid-settle.
    """

    def test_partition_severs_in_flight_messages(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        a.send(2, "msg")  # in flight, due at t = latency
        net.partition({"west": [1], "east": [2]})
        net.run()
        assert b.received == []
        assert net.messages_dropped == 1
        assert net.traffic[1].dropped_to == 1

    def test_heal_before_delivery_lets_in_flight_message_through(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        a.send(2, "msg")
        net.partition({"west": [1], "east": [2]})
        net.heal_partition()
        net.run()
        assert b.received == [1]

    def test_partition_during_salad_settle_severs_replication(self):
        # Insert without settling, cut the network mid-flight, then settle:
        # the replication messages crossing the cut must be dropped.
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=13))
        salad.build(20)
        ids = sorted(leaf.identifier for leaf in salad.alive_leaves())
        fp = synthetic_fingerprint(30_000, 9)
        salad.insert_records({ids[0]: [SaladRecord(fp, ids[0])]}, settle=False)
        salad.network.partition({"a": ids[:10], "b": ids[10:]})
        dropped_before = salad.network.messages_dropped
        salad.network.run()
        assert salad.network.messages_dropped > dropped_before


class TestPartitionLifecycle:
    """Departure must scrub partition state; stale labels once survived it.

    The seed's ``deregister`` left the departed machine's entry in the
    partition map, so a machine that departed while partitioned and later
    rejoined under the same identifier silently inherited the stale label
    and kept dropping traffic with no partition in force.
    """

    def test_depart_partition_rejoin_regression(self):
        net = Network(EventScheduler())
        a, b = Probe(1, net), Probe(2, net)
        net.partition({"island": [2]})
        b.depart()
        # Rejoin under the same identifier: the departure must have taken
        # the "island" label with it, leaving both machines in the default
        # partition -- under the seed the stale label kept dropping traffic.
        b2 = Probe(2, net)
        a.send(2, "msg")
        net.run()
        assert b2.received == [1]
        assert net.messages_dropped == 0

    def test_deregister_clears_partition_label(self):
        net = Network(EventScheduler())
        Probe(1, net)
        b = Probe(2, net)
        net.partition({"island": [2]})
        b.depart()
        assert 2 not in net._partition_of

    def test_partition_warns_on_never_registered_ids(self):
        net = Network(EventScheduler())
        Probe(1, net)
        with pytest.warns(RuntimeWarning, match="never registered"):
            net.partition({"island": [0xBAD]})

    def test_partition_accepts_departed_ids_silently(self):
        # Departed-but-once-registered ids are legitimate labels (the
        # caller may partition ahead of a rejoin); only never-seen ids warn.
        net = Network(EventScheduler())
        Probe(1, net)
        b = Probe(2, net)
        b.depart()
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            net.partition({"island": [2]})


class TestSaladUnderPartition:
    def test_duplicates_found_within_but_not_across(self):
        """During a partition, each side keeps finding its own duplicates;
        cross-partition duplicates go undiscovered until the network heals."""
        salad = Salad(SaladConfig(target_redundancy=2.5, seed=71))
        salad.build(60)
        leaves = salad.alive_leaves()
        west = [l.identifier for l in leaves[:30]]
        east = [l.identifier for l in leaves[30:]]
        salad.network.partition({"west": west, "east": east})

        fp_west = synthetic_fingerprint(50_000, 1)
        fp_cross = synthetic_fingerprint(60_000, 2)
        batches = {
            west[0]: [SaladRecord(fp_west, west[0]), SaladRecord(fp_cross, west[0])],
            west[1]: [SaladRecord(fp_west, west[1])],
            east[0]: [SaladRecord(fp_cross, east[0])],
        }
        salad.insert_records(batches)

        found = {p.fingerprint for _, p in salad.collected_matches()}
        # The west-side pair may be found iff its cell survives in-partition;
        # the cross pair cannot be co-observed except if their shared cell
        # has leaves on one side that received both -- east's record cannot
        # reach a west leaf, so a match requires an east leaf having both,
        # and west's record cannot reach it either.
        assert fp_cross not in found

        # Heal and re-publish the cross record from the east holder.
        salad.network.heal_partition()
        salad.insert_records({east[0]: [SaladRecord(fp_cross, east[0])]})
        refound = {p.fingerprint for _, p in salad.collected_matches()}
        # Now discovery is possible (west's copy may have been lost in the
        # partitioned epoch, so assert no crash and no false negatives when
        # the west copy is re-published too).
        salad.insert_records({west[0]: [SaladRecord(fp_cross, west[0])]})
        refound = {p.fingerprint for _, p in salad.collected_matches()}
        assert fp_cross in refound
