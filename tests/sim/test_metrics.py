"""CDFs, coefficient of variation, histograms, threshold sweeps."""

import pytest

from repro.sim.metrics import (
    Cdf,
    coefficient_of_variation,
    geometric_thresholds,
    histogram,
    mean,
)


class TestCov:
    def test_constant_series_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_known_value(self):
        # values 1,3: mean 2, population sigma 1 -> CoV 0.5
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert coefficient_of_variation([]) == 0.0

    def test_scale_invariant(self):
        xs = [1, 2, 3, 10]
        assert coefficient_of_variation(xs) == pytest.approx(
            coefficient_of_variation([10 * x for x in xs])
        )


class TestCdf:
    def test_points_monotone_to_one(self):
        cdf = Cdf.from_samples([3, 1, 2, 2])
        points = cdf.points()
        assert points[-1][1] == 1.0
        values = [v for v, _ in points]
        freqs = [f for _, f in points]
        assert values == sorted(values)
        assert freqs == sorted(freqs)

    def test_duplicate_values_merge(self):
        cdf = Cdf.from_samples([2, 2, 2])
        assert cdf.points() == [(2, 1.0)]

    def test_at(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == 0.5
        assert cdf.at(100) == 1.0

    def test_quantile(self):
        cdf = Cdf.from_samples(list(range(1, 101)))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_mean_and_cov(self):
        cdf = Cdf.from_samples([1, 3])
        assert cdf.mean == 2
        assert cdf.cov == pytest.approx(0.5)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([]).quantile(0.5)


class TestHistogram:
    def test_bins(self):
        assert histogram([0.1, 0.9, 1.5, 2.0], 1.0) == {0.0: 2, 1.0: 1, 2.0: 1}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            histogram([1], 0)


class TestGeometricThresholds:
    def test_paper_axis(self):
        # 1, 8, 64, ..., 2^30 -- the Figs. 7/9/11 x-axis.
        values = geometric_thresholds(1, 2**30, 8)
        assert values[0] == 1
        assert values[1] == 8
        assert values[-1] == 8**10
        assert len(values) == 11

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            geometric_thresholds(0, 10)
        with pytest.raises(ValueError):
            geometric_thresholds(1, 10, 1)


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_values(self):
        assert mean([1, 2, 3]) == 2.0
