"""AES against the FIPS-197 appendix test vectors, plus behavioral checks."""

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE, _gf_mul

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFipsVectors:
    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(PLAINTEXT) == expected

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(PLAINTEXT) == expected

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(PLAINTEXT) == expected

    def test_aes128_fips_appendix_b(self):
        # The worked example of FIPS-197 appendix B.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plaintext) == expected


class TestRoundTrip:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        block = b"0123456789abcdef"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_give_different_ciphertexts(self):
        block = bytes(16)
        a = AES(bytes(16)).encrypt_block(block)
        b = AES(bytes([1] + [0] * 15)).encrypt_block(block)
        assert a != b

    def test_encryption_is_deterministic(self):
        key = bytes(range(16))
        block = b"deterministic..."
        assert AES(key).encrypt_block(block) == AES(key).encrypt_block(block)

    def test_single_bit_plaintext_change_diffuses(self):
        key = bytes(range(16))
        a = AES(key).encrypt_block(bytes(16))
        b = AES(key).encrypt_block(bytes([1]) + bytes(15))
        differing = sum(1 for x, y in zip(a, b) if x != y)
        assert differing >= 12  # avalanche: nearly every byte changes


class TestValidation:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(bytes(15))

    @pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
    def test_rejects_bad_block_length(self, bad_len):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(bad_len))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(bad_len))


class TestGaloisField:
    def test_known_products(self):
        # Worked examples from the FIPS-197 specification text.
        assert _gf_mul(0x57, 0x13) == 0xFE
        assert _gf_mul(0x57, 0x02) == 0xAE

    def test_multiplicative_identity(self):
        for x in (0x01, 0x53, 0xFF):
            assert _gf_mul(x, 1) == x

    def test_commutative(self):
        assert _gf_mul(0x3C, 0xA7) == _gf_mul(0xA7, 0x3C)
