"""RSA key pairs: roundtrip, padding randomization, limits, serialization."""

import random

import pytest

from repro.crypto.rsa import RSAError, generate_keypair


class TestRoundTrip:
    def test_encrypt_decrypt(self, keypair):
        payload = b"a 16-byte secret"
        ciphertext = keypair.public.encrypt(payload, rng=random.Random(1))
        assert keypair.decrypt(ciphertext) == payload

    def test_empty_payload(self, keypair):
        ciphertext = keypair.public.encrypt(b"", rng=random.Random(2))
        assert keypair.decrypt(ciphertext) == b""

    def test_max_size_payload(self, keypair):
        payload = bytes(keypair.public.max_payload_bytes)
        assert keypair.decrypt(keypair.public.encrypt(payload)) == payload

    def test_wrong_key_fails_cleanly(self, keypair, second_keypair):
        ciphertext = keypair.public.encrypt(b"secret", rng=random.Random(3))
        with pytest.raises(RSAError):
            second_keypair.decrypt(ciphertext)


class TestPadding:
    def test_equal_payloads_encrypt_differently(self, keypair):
        """The nonce padding makes F IND-CPA-style randomized.

        This matters: the *only* determinism in convergent encryption must
        come from the convergent construction, never from F.
        """
        payload = b"same payload"
        a = keypair.public.encrypt(payload, rng=random.Random(1))
        b = keypair.public.encrypt(payload, rng=random.Random(2))
        assert a != b
        assert keypair.decrypt(a) == keypair.decrypt(b) == payload

    def test_oversized_payload_rejected(self, keypair):
        too_big = bytes(keypair.public.max_payload_bytes + 1)
        with pytest.raises(RSAError):
            keypair.public.encrypt(too_big)

    def test_ciphertext_above_modulus_rejected(self, keypair):
        n_bytes = (keypair.public.modulus_bits + 7) // 8
        bogus = (keypair.public.n + 1).to_bytes(n_bytes + 1, "big")
        with pytest.raises(RSAError):
            keypair.decrypt(bogus)


class TestKeyGeneration:
    def test_deterministic_for_seed(self):
        a = generate_keypair(512, rng=random.Random(42))
        b = generate_keypair(512, rng=random.Random(42))
        assert a.public == b.public

    def test_distinct_seeds_distinct_keys(self):
        a = generate_keypair(512, rng=random.Random(1))
        b = generate_keypair(512, rng=random.Random(2))
        assert a.public.n != b.public.n

    def test_modulus_width(self, keypair):
        assert keypair.public.modulus_bits == 512


class TestSerialization:
    def test_to_bytes_is_deterministic(self, keypair):
        assert keypair.public.to_bytes() == keypair.public.to_bytes()

    def test_to_bytes_distinguishes_keys(self, keypair, second_keypair):
        assert keypair.public.to_bytes() != second_keypair.public.to_bytes()
