"""Identifier/fingerprint hashing and convergence-key derivation."""

import pytest

from repro.crypto.hashing import (
    FINGERPRINT_HASH_BYTES,
    content_hash,
    convergence_key,
    strong_hash,
)


class TestStrongHash:
    def test_twenty_bytes(self):
        # The paper's identifiers and fingerprints are 20-byte hashes.
        assert len(strong_hash(b"anything")) == FINGERPRINT_HASH_BYTES == 20

    def test_deterministic(self):
        assert strong_hash(b"abc") == strong_hash(b"abc")

    def test_distinguishes_content(self):
        assert content_hash(b"a") != content_hash(b"b")


class TestConvergenceKey:
    def test_identical_plaintexts_identical_keys(self):
        assert convergence_key(b"same bytes") == convergence_key(b"same bytes")

    def test_different_plaintexts_different_keys(self):
        assert convergence_key(b"file one") != convergence_key(b"file two")

    @pytest.mark.parametrize("width", [16, 24, 32])
    def test_valid_aes_key_widths(self, width):
        assert len(convergence_key(b"data", key_bytes=width)) == width

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            convergence_key(b"data", key_bytes=20)

    def test_truncation_is_prefix(self):
        assert convergence_key(b"x", 16) == convergence_key(b"x", 32)[:16]
