"""CTR and CBC modes: roundtrip, determinism, length, and padding behavior."""

import pytest

from repro.crypto.modes import (
    decrypt_cbc,
    decrypt_ctr,
    encrypt_cbc,
    encrypt_ctr,
)

KEY = bytes(range(16))


class TestCtr:
    @pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 1000])
    def test_roundtrip_all_lengths(self, length):
        plaintext = bytes(i % 251 for i in range(length))
        assert decrypt_ctr(KEY, encrypt_ctr(KEY, plaintext)) == plaintext

    def test_ciphertext_length_equals_plaintext_length(self):
        # Coalesced storage must not inflate files.
        for length in (0, 5, 16, 33):
            assert len(encrypt_ctr(KEY, bytes(length))) == length

    def test_deterministic(self):
        plaintext = b"convergence demands determinism"
        assert encrypt_ctr(KEY, plaintext) == encrypt_ctr(KEY, plaintext)

    def test_nonce_changes_keystream(self):
        plaintext = bytes(32)
        assert encrypt_ctr(KEY, plaintext, nonce=0) != encrypt_ctr(KEY, plaintext, nonce=1)

    def test_different_key_different_ciphertext(self):
        plaintext = b"some plaintext bytes here..."
        other = bytes(range(1, 17))
        assert encrypt_ctr(KEY, plaintext) != encrypt_ctr(other, plaintext)


class TestCbc:
    @pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 100])
    def test_roundtrip_all_lengths(self, length):
        plaintext = bytes(i % 13 for i in range(length))
        assert decrypt_cbc(KEY, encrypt_cbc(KEY, plaintext)) == plaintext

    def test_output_is_whole_blocks(self):
        assert len(encrypt_cbc(KEY, bytes(1))) % 16 == 0
        assert len(encrypt_cbc(KEY, bytes(16))) == 32  # padding adds a block

    def test_deterministic_with_fixed_iv(self):
        plaintext = b"cbc is also deterministic here"
        assert encrypt_cbc(KEY, plaintext) == encrypt_cbc(KEY, plaintext)

    def test_corrupt_padding_rejected(self):
        ciphertext = bytearray(encrypt_cbc(KEY, b"hello"))
        ciphertext[-1] ^= 0xFF
        with pytest.raises(ValueError):
            decrypt_cbc(KEY, bytes(ciphertext))

    def test_partial_block_ciphertext_rejected(self):
        with pytest.raises(ValueError):
            decrypt_cbc(KEY, bytes(10))

    def test_bad_iv_length_rejected(self):
        with pytest.raises(ValueError):
            encrypt_cbc(KEY, b"x", iv=bytes(5))
