"""The lazily sampled random oracles of section 3.1's proof model."""

import random

import pytest

from repro.crypto.random_oracle import (
    OracleQueryBudgetExceeded,
    RandomOracleHash,
    RandomOraclePermutation,
)


class TestHashOracle:
    def test_repeated_queries_agree(self):
        oracle = RandomOracleHash(output_bytes=8, rng=random.Random(1))
        assert oracle.query(b"x") == oracle.query(b"x")

    def test_output_width(self):
        oracle = RandomOracleHash(output_bytes=5, rng=random.Random(2))
        assert len(oracle.query(b"hello")) == 5

    def test_counts_queries(self):
        oracle = RandomOracleHash(output_bytes=4, rng=random.Random(3))
        oracle.query(b"a")
        oracle.query(b"a")
        oracle.query(b"b")
        assert oracle.queries == 3

    def test_budget_enforced(self):
        oracle = RandomOracleHash(output_bytes=4, rng=random.Random(4), budget=2)
        oracle.query(b"a")
        oracle.query(b"b")
        with pytest.raises(OracleQueryBudgetExceeded):
            oracle.query(b"c")


class TestPermutationOracle:
    def test_inverse_relationship(self):
        oracle = RandomOraclePermutation(width_bytes=4, rng=random.Random(5))
        key = b"k" * 4
        ciphertext = oracle.encrypt(key, b"mesg")
        assert oracle.decrypt(key, ciphertext) == b"mesg"

    def test_forward_then_inverse_consistency_both_orders(self):
        oracle = RandomOraclePermutation(width_bytes=2, rng=random.Random(6))
        key = b"kk"
        plaintext = oracle.decrypt(key, b"ct")  # inverse sampled first
        assert oracle.encrypt(key, plaintext) == b"ct"

    def test_is_injective_per_key(self):
        oracle = RandomOraclePermutation(width_bytes=1, rng=random.Random(7))
        key = b"z"
        images = {oracle.encrypt(key, bytes([p])) for p in range(256)}
        assert len(images) == 256  # a permutation of the full domain

    def test_keys_are_independent(self):
        oracle = RandomOraclePermutation(width_bytes=8, rng=random.Random(8))
        a = oracle.encrypt(b"key-a", b"8 bytes!")
        b = oracle.encrypt(b"key-b", b"8 bytes!")
        assert a != b  # with 2^-64 failure probability

    def test_budget_enforced(self):
        oracle = RandomOraclePermutation(width_bytes=2, rng=random.Random(9), budget=1)
        oracle.encrypt(b"k", b"ab")
        with pytest.raises(OracleQueryBudgetExceeded):
            oracle.decrypt(b"k", b"ab")
