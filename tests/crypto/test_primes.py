"""Miller-Rabin primality and prime generation."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 997, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 561, 1105, 6601, 2**31, 7919 * 104729]
# 561, 1105, 6601 are Carmichael numbers: they fool Fermat tests but not
# Miller-Rabin.


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_accepts_primes(self, n):
        assert is_probable_prime(n, rng=random.Random(0))

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites_including_carmichael(self, n):
        assert not is_probable_prime(n, rng=random.Random(0))

    def test_negative_numbers_rejected(self):
        assert not is_probable_prime(-7)

    def test_agrees_with_sieve_below_2000(self):
        sieve = [True] * 2000
        sieve[0] = sieve[1] = False
        for i in range(2, 45):
            if sieve[i]:
                for j in range(i * i, 2000, i):
                    sieve[j] = False
        rng = random.Random(3)
        for n in range(2000):
            assert is_probable_prime(n, rng=rng) == sieve[n], n


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [16, 32, 64, 256])
    def test_exact_bit_width(self, bits):
        p = generate_prime(bits, rng=random.Random(1))
        assert p.bit_length() == bits
        assert is_probable_prime(p, rng=random.Random(2))

    def test_top_two_bits_set(self):
        # Guarantees products of two such primes have full width.
        p = generate_prime(64, rng=random.Random(4))
        assert (p >> 62) == 0b11

    def test_deterministic_for_seed(self):
        assert generate_prime(32, rng=random.Random(9)) == generate_prime(
            32, rng=random.Random(9)
        )

    def test_rejects_tiny_widths(self):
        with pytest.raises(ValueError):
            generate_prime(4)
