"""The experiments CLI."""

import pytest

from repro.experiments import runner
from repro.experiments.scales import get_scale


class TestRunExperiments:
    def test_subset_runs_and_renders(self):
        outputs = runner.run_experiments(["dataset", "model"], "small", seed=1)
        assert set(outputs) == {"dataset", "model"}
        assert "Dataset statistics" in outputs["dataset"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            runner.run_experiments(["fig99"], "small")


class TestScales:
    def test_known_scales(self):
        for name in ("small", "default", "full"):
            scale = get_scale(name)
            assert scale.machines > 0

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_full_scale_matches_paper(self):
        full = get_scale("full")
        assert full.machines == 585
        assert full.growth_max_leaves == 10_000


class TestCli:
    def test_main_with_args(self, capsys):
        assert runner.main(["--scale", "small", "--only", "dataset"]) == 0
        out = capsys.readouterr().out
        assert "[dataset]" in out
        assert "completed 1 experiments" in out

    def test_fig_topology_with_specs(self, capsys):
        assert (
            runner.main(
                [
                    "--scale", "small",
                    "--only", "fig-topology",
                    "--topology", "corporate,wan=8",
                    "--traffic", "rate=6,waves=4,contents=32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig_topology" in out
        assert "per-link-class message load" in out

    def test_bad_topology_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--only", "fig-topology", "--topology", "galaxy"])
        assert "unknown topology preset" in capsys.readouterr().err

    def test_bad_traffic_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--only", "fig-topology", "--traffic", "burst=2"])
        assert "unknown traffic key" in capsys.readouterr().err
