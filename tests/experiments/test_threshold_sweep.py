"""The shared threshold-sweep engine."""

import pytest

from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import run_threshold_sweep

TINY = ExperimentScale(
    name="tiny",
    machines=30,
    mean_files_per_machine=10,
    growth_max_leaves=30,
    fig15_small=15,
    fig15_large=30,
)


@pytest.fixture(scope="module")
def sweep():
    return run_threshold_sweep(
        TINY, lambdas=(2.0,), thresholds=(1, 4096, 1 << 20), seed=2
    )


class TestSweepStructure:
    def test_thresholds_sorted_ascending(self, sweep):
        assert sweep.thresholds == (1, 4096, 1 << 20)
        assert [p.min_size for p in sweep.points[2.0]] == [1, 4096, 1 << 20]

    def test_per_machine_series_cover_all_machines(self, sweep):
        assert len(sweep.message_totals[2.0]) == 30
        assert len(sweep.database_sizes[2.0]) == 30

    def test_ideal_series_available(self, sweep):
        ideal = sweep.ideal_consumed
        assert len(ideal) == 3
        assert ideal == sorted(ideal)

    def test_series_dictionaries_label_lambdas(self, sweep):
        assert set(sweep.consumed_series()) == {"ideal", "Lambda=2.0"}
        assert set(sweep.message_series()) == {"Lambda=2.0"}
        assert set(sweep.database_series()) == {"Lambda=2.0"}

    def test_corpus_summary_attached(self, sweep):
        assert sweep.corpus_summary.machine_count == 30

    def test_duplicate_thresholds_deduplicated(self):
        result = run_threshold_sweep(
            TINY, lambdas=(2.0,), thresholds=(1, 1, 4096), seed=3
        )
        assert result.thresholds == (1, 4096)
