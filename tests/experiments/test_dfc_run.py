"""The shared DFC pipeline: build/fail/insert phases and the sweep trick."""

import pytest

from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.workload.generator import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(machines=40, mean_files_per_machine=15), seed=3)


class TestBuildAndInsert:
    def test_build_maps_every_machine(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=1))
        run.build()
        assert len(run.leaf_of_machine) == len(corpus)
        assert len(run.salad) == len(corpus)

    def test_double_build_rejected(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=1))
        run.build()
        with pytest.raises(RuntimeError):
            run.build()

    def test_insert_all_counts_files(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=2))
        run.build()
        assert run.insert_all() == corpus.total_files

    def test_threshold_limits_insertions(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=3))
        run.build()
        eligible = sum(len(m.files_at_least(32_768)) for m in corpus.machines)
        assert run.insert_all(min_size=32_768) == eligible

    def test_reclaims_most_duplicate_space(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=4))
        run.build()
        run.insert_all()
        ideal = corpus.summary().duplicate_byte_fraction
        assert run.reclaimed_fraction() > 0.6 * ideal

    def test_consumed_bounded_by_ideal(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=5))
        run.build()
        run.insert_all()
        assert run.consumed_bytes() >= run.accounting.ideal_consumed_bytes()
        assert run.consumed_bytes() <= corpus.total_bytes


class TestSweep:
    def test_sweep_matches_fresh_runs(self, corpus):
        """The one-pass descending-bucket sweep must equal independent runs
        at each threshold (same seed => same SALAD and routing)."""
        thresholds = [1, 4096, 1 << 20]
        sweep_run = DfcRun(corpus, DfcConfig(target_redundancy=2.0, seed=6))
        sweep_run.build()
        points = sweep_run.insert_sweep(thresholds)
        assert [p.min_size for p in points] == thresholds

        fresh = DfcRun(corpus, DfcConfig(target_redundancy=2.0, seed=6))
        fresh.build()
        fresh.insert_all(min_size=4096)
        assert points[1].consumed_bytes == fresh.consumed_bytes(min_size=4096)

    def test_consumed_monotone_in_threshold(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=7))
        run.build()
        points = run.insert_sweep([1, 512, 32_768, 1 << 21])
        consumed = [p.consumed_bytes for p in points]
        assert consumed == sorted(consumed)
        ideal = [p.ideal_consumed_bytes for p in points]
        assert ideal == sorted(ideal)

    def test_messages_and_db_monotone_decreasing_in_threshold(self, corpus):
        run = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=8))
        run.build()
        points = run.insert_sweep([1, 512, 32_768, 1 << 21])
        messages = [p.mean_messages for p in points]
        assert messages == sorted(messages, reverse=True)
        dbsizes = [p.mean_database_records for p in points]
        assert dbsizes == sorted(dbsizes, reverse=True)


class TestFailureModes:
    def test_duty_cycle_failure_degrades_gracefully(self, corpus):
        baseline = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=9))
        baseline.build()
        baseline.insert_all()

        lossy = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=9))
        lossy.build()
        lossy.set_failure_probability(0.5)
        lossy.insert_all()

        assert lossy.reclaimed_fraction() <= baseline.reclaimed_fraction()
        assert lossy.reclaimed_fraction() > 0.25 * baseline.reclaimed_fraction()

    def test_total_failure_reclaims_nothing(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=10))
        run.build()
        run.set_failure_probability(1.0)
        run.insert_all()
        assert run.reclaimed_fraction() == 0.0

    def test_crash_ablation_is_harsher(self, corpus):
        duty = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=11))
        duty.build()
        duty.set_failure_probability(0.5)
        duty.insert_all()

        crash = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=11))
        crash.build()
        crash.crash_machines(0.5)
        crash.insert_all()

        assert crash.reclaimed_fraction() <= duty.reclaimed_fraction()

    def test_invalid_probability(self, corpus):
        run = DfcRun(corpus, DfcConfig(seed=12))
        with pytest.raises(ValueError):
            run.set_failure_probability(1.5)
