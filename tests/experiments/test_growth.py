"""The growth engine shared by Figs. 14/15."""

import pytest

from repro.experiments.growth import (
    GrowthResult,
    GrowthSnapshot,
    growth_sample_points,
    run_growth,
)


class TestSamplePoints:
    def test_reaches_max(self):
        points = growth_sample_points(100, points=10)
        assert points[-1] == 100

    def test_roughly_requested_count(self):
        points = growth_sample_points(240, points=24)
        assert 20 <= len(points) <= 26

    def test_monotone(self):
        points = growth_sample_points(1000)
        assert points == sorted(points)

    def test_tiny_max(self):
        assert growth_sample_points(3, points=24) == [1, 2, 3]


class TestRunGrowth:
    @pytest.fixture(scope="class")
    def result(self):
        return run_growth(2.0, max_leaves=60, sample_sizes=[20, 40, 60], seed=5)

    def test_snapshots_at_requested_sizes(self, result):
        assert [s.system_size for s in result.snapshots] == [20, 40, 60]

    def test_snapshot_population_matches_size(self, result):
        for snap in result.snapshots:
            assert len(snap.leaf_table_sizes) == snap.system_size

    def test_means_grow(self, result):
        means = [s.mean for s in result.snapshots]
        assert means[-1] > means[0]

    def test_snapshot_at_lookup(self, result):
        assert result.snapshot_at(40).system_size == 40
        with pytest.raises(KeyError):
            result.snapshot_at(41)

    def test_oversized_samples_clamped(self):
        result = run_growth(2.0, max_leaves=10, sample_sizes=[5, 10, 99], seed=6)
        assert [s.system_size for s in result.snapshots] == [5, 10]

    def test_empty_snapshot_mean(self):
        assert GrowthSnapshot(system_size=0, leaf_table_sizes=[]).mean == 0.0
