"""The two ablation experiments: block granularity and dimensionality."""

import pytest

from repro.experiments import ablation_blocks, ablation_dimensionality
from repro.experiments.scales import ExperimentScale

TINY = ExperimentScale(
    name="tiny",
    machines=48,
    mean_files_per_machine=10,
    growth_max_leaves=48,
    fig15_small=24,
    fig15_large=48,
)


class TestBlockAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_blocks.run(
            TINY, base_documents=4, versions_per_document=3, document_size=128 * 1024, seed=2
        )

    def test_whole_file_reclaims_nothing_across_versions(self, result):
        assert result.reclaimed_fraction("whole-file") == pytest.approx(0.0, abs=1e-9)

    def test_fixed_blocks_reclaim_some(self, result):
        assert result.reclaimed_fraction("fixed-block") > 0.3

    def test_content_defined_beats_fixed(self, result):
        assert (
            result.reclaimed_fraction("content-defined")
            > result.reclaimed_fraction("fixed-block")
        )

    def test_physical_bounded_by_logical(self, result):
        for scheme in result.schemes:
            assert 0 < result.physical_bytes[scheme] <= result.logical_bytes

    def test_render(self, result):
        out = result.render()
        assert "whole-file" in out and "content-defined" in out


class TestDimensionalityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_dimensionality.run(TINY, dimensions=(1, 2, 3), record_count=400, seed=3)

    def test_leaf_tables_shrink_with_dimensionality(self, result):
        tables = [result.mean_leaf_table[d] for d in result.dimensions]
        assert tables == sorted(tables, reverse=True)

    def test_d1_table_is_everyone(self, result):
        # In one dimension every leaf is vector-aligned with every other.
        assert result.mean_leaf_table[1] == pytest.approx(TINY.machines - 1, rel=0.05)

    def test_routing_cost_rises_with_dimensionality(self, result):
        messages = [result.record_messages[d] for d in result.dimensions]
        assert messages == sorted(messages)

    def test_predictions_present(self, result):
        for d in result.dimensions:
            assert result.predicted_loss[d] == pytest.approx(
                ablation_dimensionality.loss_probability(2.5, d, TINY.machines)
            )

    def test_render(self, result):
        out = result.render()
        assert "Eq.13" in out and "Eq.14" in out
