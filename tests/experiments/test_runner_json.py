"""The runner's machine-readable JSON output."""

import json

import pytest

from repro.experiments import runner
from repro.experiments.runner import _jsonable, run_experiments


class TestJsonable:
    def test_dataclass_to_dict(self):
        from repro.experiments import dataset_stats
        from repro.experiments.scales import get_scale

        result = dataset_stats.run(get_scale("small"), seed=1)
        data = _jsonable(result)
        assert data["summary"]["machine_count"] == 64

    def test_non_string_keys_become_strings(self):
        assert _jsonable({1.5: [1, 2]}) == {"1.5": [1, 2]}

    def test_bytes_become_hex(self):
        assert _jsonable(b"\x01\x02") == "0102"

    def test_unencodable_becomes_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _jsonable(Opaque()) == "<opaque>"


class TestRawMode:
    def test_raw_returns_result_objects(self):
        raw = run_experiments(["dataset"], "small", seed=1, raw=True)
        assert hasattr(raw["dataset"], "render")

    def test_rendered_mode_returns_strings(self):
        outputs = run_experiments(["dataset"], "small", seed=1)
        assert isinstance(outputs["dataset"], str)


class TestCliJson:
    def test_json_file_written_and_loadable(self, tmp_path, capsys):
        path = str(tmp_path / "results.json")
        assert runner.main(
            ["--scale", "small", "--only", "dataset", "--json", path]
        ) == 0
        data = json.load(open(path))
        assert data["scale"] == "small"
        assert "dataset" in data["results"]
        assert data["results"]["dataset"]["summary"]["total_files"] > 0
        out = capsys.readouterr().out
        assert "[dataset]" in out  # rendered tables still printed
