"""The churn experiment: DFC under continuous failure and recovery."""

import pytest

from repro.experiments import churn
from repro.experiments.scales import ExperimentScale

TINY = ExperimentScale(
    name="tiny",
    machines=40,
    mean_files_per_machine=10,
    growth_max_leaves=40,
    fig15_small=20,
    fig15_large=40,
)


@pytest.fixture(scope="module")
def result():
    return churn.run(TINY, rates=(0.0, 0.01, 0.08), seed=4)


class TestChurnSweep:
    def test_zero_churn_reclaims_most_of_ideal(self, result):
        assert result.reclaimed_fraction[0.0] > 0.5 * result.ideal_fraction

    def test_heavy_churn_degrades(self, result):
        assert result.reclaimed_fraction[0.08] < result.reclaimed_fraction[0.0]

    def test_churn_triggers_flushes(self, result):
        assert result.entries_flushed[0.08] > result.entries_flushed[0.0]

    def test_bounded_by_ideal(self, result):
        for fraction in result.reclaimed_fraction.values():
            assert 0.0 <= fraction <= result.ideal_fraction + 1e-9

    def test_render(self, result):
        out = result.render()
        assert "Churn" in out and "ideal" in out
