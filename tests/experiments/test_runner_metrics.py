"""The experiment CLI's telemetry surface: --metrics-out and --trace-invariants.

Every experiment CLI must emit a schema-valid RunReport whose registry
carries the harvested engine counters; with ``--trace-invariants`` the
opt-in tracer's violation counters appear (at zero on healthy runs).
"""

import json

import pytest

from repro.experiments import runner
from repro.obs.report import validate_run_report
from repro.salad.salad import set_detailed_metrics, set_trace_invariants


@pytest.fixture(autouse=True)
def _reset_session_defaults():
    yield
    set_trace_invariants(False)
    set_detailed_metrics(False)


def _run(tmp_path, *extra):
    path = tmp_path / "report.json"
    code = runner.main(
        ["--scale", "small", "--only", "fig07", "--metrics-out", str(path), *extra]
    )
    assert code == 0
    return json.loads(path.read_text(encoding="utf-8"))


def _counters(report):
    return {
        e["name"]: e["value"]
        for e in report["metrics"]["counters"]
        if not e["labels"]
    }


class TestMetricsOut:
    def test_report_is_schema_valid_with_engine_counters(self, tmp_path):
        report = _run(tmp_path)
        assert validate_run_report(report) == []
        counters = _counters(report)
        assert counters["salad.records.arrivals"] > 0
        assert counters["salad.network.messages_sent"] > 0
        assert counters["salad.leaves.total"] > 0
        # per-experiment phases were recorded
        names = [p["name"] for p in report["phases"]]
        assert "threshold_sweep" in names
        assert "fig07" in names
        # environment extras from the CLI
        assert report["environment"]["scale"] == "small"
        assert "git_sha" in report["environment"]
        # healthy routing: no tracer => no invariant counters
        assert "sim.invariants.messages_traced" not in counters

    def test_growth_runs_report_too(self, tmp_path):
        path = tmp_path / "g.json"
        code = runner.main(
            ["--scale", "small", "--only", "fig14", "--metrics-out", str(path)]
        )
        assert code == 0
        report = json.loads(path.read_text(encoding="utf-8"))
        assert validate_run_report(report) == []
        assert _counters(report)["salad.leaves.total"] > 0

    def test_no_metrics_out_writes_nothing(self, tmp_path):
        code = runner.main(["--scale", "small", "--only", "dataset"])
        assert code == 0
        assert list(tmp_path.iterdir()) == []


class TestTraceInvariants:
    def test_tracer_feeds_violation_counters(self, tmp_path):
        report = _run(tmp_path, "--trace-invariants")
        assert validate_run_report(report) == []
        counters = _counters(report)
        assert counters["sim.invariants.messages_traced"] > 0
        labeled = {
            (e["name"], e["labels"].get("check")): e["value"]
            for e in report["metrics"]["counters"]
            if e["name"] == "sim.invariants.violations"
        }
        # all four checks ran and found a healthy trace
        assert set(check for _, check in labeled) == {
            "hop_bound",
            "progress",
            "join_suppression",
            "traffic_conservation",
        }
        assert all(v == 0 for v in labeled.values())
        assert report["environment"]["trace_invariants"] is True
