"""The fig_topology experiment: topology dissemination under skewed traffic."""

from dataclasses import replace

import pytest

from repro.experiments import fig_topology
from repro.experiments.scales import SMALL
from repro.sim.topology import parse_topology
from repro.workload.traffic import TrafficSpec

TINY = replace(SMALL, name="tiny", machines=16)
FAST_TRAFFIC = TrafficSpec(contents=32, arrival_rate=6.0, waves=6)


@pytest.fixture(scope="module")
def result():
    return fig_topology.run(TINY, seed=3, traffic=FAST_TRAFFIC)


class TestFigTopology:
    def test_defaults_to_corporate(self, result):
        assert result.topology.startswith("corporate(")
        assert result.leaves == TINY.machines
        assert result.waves == FAST_TRAFFIC.waves

    def test_quiescence_series(self, result):
        assert len(result.quiescence_times) == FAST_TRAFFIC.waves
        assert result.quiescence_max >= result.quiescence_mean > 0
        assert result.quiescence_max == max(result.quiescence_times)

    def test_per_class_counters(self, result):
        assert set(result.class_messages) == {"rack", "lan", "wan"}
        total = sum(c["sent"] for c in result.class_messages.values())
        assert total > 0
        wan = result.class_messages["wan"]
        assert result.wan_share == wan["sent"] / total
        for counts in result.class_messages.values():
            assert counts["delivered"] + counts["dropped"] <= counts["sent"]

    def test_wan_cut_recorded(self, result):
        # 4 sites and 6 waves: the middle-third cut is in force for waves
        # 2..3, and wan messages must die while it is.
        assert result.cut_waves == (2, 3)
        assert result.dropped_during_cut > 0
        assert result.class_messages["wan"]["dropped"] >= result.dropped_during_cut

    def test_hot_cluster_stress(self, result):
        assert 0 < result.hot_content_share <= 1
        assert result.cell_stress >= 1.0
        assert 0 < result.top_cell_share <= 1

    def test_metrics_carry_labeled_class_counters(self, result):
        names = {
            (entry["name"], entry.get("labels", {}).get("link_class"))
            for entry in result.metrics["counters"]
            if entry["name"].startswith("salad.network.class_")
        }
        assert ("salad.network.class_sent", "wan") in names

    def test_render(self, result):
        text = result.render()
        assert "per-link-class message load" in text
        assert "wan" in text and "rack" in text
        assert "site-0 wan cut" in text

    def test_accepts_parsed_objects(self):
        topo = parse_topology("sites=2,racks=1,wan=10")
        tiny = replace(TINY, machines=8)
        spec = TrafficSpec(contents=16, arrival_rate=3.0, waves=3)
        out = fig_topology.run(tiny, seed=1, topology=topo, traffic=spec)
        assert out.topology == topo.describe()

    def test_rejects_flat_fabric(self):
        with pytest.raises(ValueError, match="needs a topology"):
            fig_topology.run(TINY, topology="flat")
