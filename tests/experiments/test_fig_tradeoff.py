"""The fig-tradeoff replication x dedup frontier."""

import pytest

from repro.experiments import fig_tradeoff
from repro.experiments.scales import SMALL


@pytest.fixture(scope="module")
def result():
    return fig_tradeoff.run(SMALL, seed=3, sweep=(1, 3))


class TestFrontier:
    def test_every_arm_present(self, result):
        assert result.sweep == (1, 3)
        assert len(result.points) == 4
        for r in (1, 3):
            for dedup in (False, True):
                assert result.point(r, dedup).replication == r

    def test_dedup_reclaims_more_space(self, result):
        for r in (1, 3):
            on, off = result.point(r, True), result.point(r, False)
            assert on.reclaimed_fraction > off.reclaimed_fraction
            assert on.reclaimed_fraction > 0.05

    def test_dedup_costs_min_availability(self, result):
        """Co-locating duplicates can only concentrate replicas, so the
        worst file's availability never improves over placement alone."""
        on, off = result.point(3, True), result.point(3, False)
        assert on.min_availability <= off.min_availability + 1e-12

    def test_replication_raises_availability(self, result):
        assert (
            result.point(3, False).min_availability
            > result.point(1, False).min_availability
        )

    def test_blast_radius_concentrated_by_dedup(self, result):
        """Killing the biggest group's R hosts destroys the whole group
        under dedup, and strictly less of it without."""
        on, off = result.point(3, True), result.point(3, False)
        assert on.files_lost == on.group_files > 1
        assert off.files_lost < on.files_lost

    def test_measured_loss_matches_analytic_prediction(self, result):
        for p in result.points:
            assert p.loss_matches_prediction

    def test_outage_probability_shrinks_with_replication(self, result):
        assert (
            result.point(3, True).loss_event_probability
            < result.point(1, True).loss_event_probability
        )
        for p in result.points:
            assert 0.0 <= p.loss_event_probability < 1.0

    def test_recovery_meets_durability_prediction(self, result):
        for p in result.points:
            assert p.recovery_meets_prediction

    def test_render_is_a_frontier_table(self, result):
        text = result.render()
        assert "fig_tradeoff" in text
        assert "dedup" in text
        # One row per (R, dedup) arm.
        rows = [
            line
            for line in text.splitlines()
            if line.strip().startswith(("1 ", "3 "))
        ]
        assert len(rows) == 4

    def test_metrics_carry_labeled_tradeoff_gauges(self, result):
        gauges = {
            (entry["name"], tuple(sorted(entry.get("labels", {}).items())))
            for entry in result.metrics["gauges"]
        }
        key = ("tradeoff.min_availability", (("dedup", "on"), ("r", "3")))
        assert key in gauges


class TestCli:
    def test_runner_single_replication(self):
        from repro.experiments.runner import run_experiments

        outputs = run_experiments(
            ["fig-tradeoff"], "small", seed=3, raw=True, replication_factor=2
        )
        result = outputs["fig-tradeoff"]
        assert result.sweep == (2,)
        assert len(result.points) == 2

    def test_runner_rejects_bad_replication(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(
                [
                    "--scale",
                    "small",
                    "--only",
                    "fig-tradeoff",
                    "--replication-factor",
                    "0",
                ]
            )

    def test_invalid_sweep_rejected(self):
        with pytest.raises(ValueError):
            fig_tradeoff.run(SMALL, seed=3, sweep=(0, 2))
