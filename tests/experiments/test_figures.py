"""Every figure experiment at tiny scale: runs, renders, and shows the
paper's qualitative shape."""

import pytest

from repro.experiments import (
    attack_check,
    dataset_stats,
    fig07_space_vs_minsize,
    fig08_space_vs_failure,
    fig09_messages_vs_minsize,
    fig10_message_cdf,
    fig11_dbsize_vs_minsize,
    fig12_dbsize_cdf,
    fig13_space_vs_dblimit,
    fig14_leaftable_vs_size,
    fig15_leaftable_cdf,
    model_check,
)
from repro.experiments.growth import run_growth_suite
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import run_threshold_sweep

TINY = ExperimentScale(
    name="tiny",
    machines=40,
    mean_files_per_machine=12,
    growth_max_leaves=80,
    fig15_small=40,
    fig15_large=80,
)

LAMBDAS = (1.5, 2.5)


@pytest.fixture(scope="module")
def sweep():
    return run_threshold_sweep(TINY, lambdas=LAMBDAS, seed=1)


@pytest.fixture(scope="module")
def growth():
    return run_growth_suite(LAMBDAS, TINY.growth_max_leaves, [40, 60, 80], seed=1)


class TestDatasetStats:
    def test_render_contains_paper_reference(self):
        out = dataset_stats.run(TINY, seed=1).render()
        assert "10,514,105" in out  # paper's number shown for comparison
        assert "duplicate byte fraction" in out


class TestFig07:
    def test_consumed_rises_with_threshold(self, sweep):
        result = fig07_space_vs_minsize.run(TINY, sweep=sweep)
        for label, series in sweep.consumed_series().items():
            assert series[-1] >= series[0], label
        assert "Fig. 7" in result.render()

    def test_higher_lambda_reclaims_more(self, sweep):
        low = sweep.points[1.5][0].consumed_bytes
        high = sweep.points[2.5][0].consumed_bytes
        assert high <= low

    def test_dfc_never_beats_ideal(self, sweep):
        for lam in LAMBDAS:
            for point in sweep.points[lam]:
                assert point.consumed_bytes >= point.ideal_consumed_bytes


class TestFig09:
    def test_messages_fall_with_threshold(self, sweep):
        result = fig09_messages_vs_minsize.run(TINY, sweep=sweep)
        for lam in LAMBDAS:
            series = [p.mean_messages for p in sweep.points[lam]]
            assert series[-1] < series[0]
        assert "Fig. 9" in result.render()

    def test_higher_lambda_costs_more_messages(self, sweep):
        assert (
            sweep.points[2.5][0].mean_messages > sweep.points[1.5][0].mean_messages
        )


class TestFig10:
    def test_cov_reported(self, sweep):
        result = fig10_message_cdf.run(TINY, sweep=sweep)
        assert set(result.cov) == set(LAMBDAS)
        for value in result.cov.values():
            assert 0 < value < 2.0
        assert "CoV" in result.render()


class TestFig11:
    def test_database_size_falls_with_threshold(self, sweep):
        result = fig11_dbsize_vs_minsize.run(TINY, sweep=sweep)
        for lam in LAMBDAS:
            series = [p.mean_database_records for p in sweep.points[lam]]
            assert series[-1] < series[0]
        assert "Fig. 11" in result.render()


class TestFig12:
    def test_renders_with_cov(self, sweep):
        result = fig12_dbsize_cdf.run(TINY, sweep=sweep)
        assert "Fig. 12" in result.render()
        assert set(result.cov) == set(LAMBDAS)


class TestFig08:
    def test_failure_sweep_shape(self):
        result = fig08_space_vs_failure.run(
            TINY, lambdas=(2.5,), probabilities=(0.0, 0.5, 0.9), seed=2
        )
        series = result.consumed[2.5]
        assert series[0] <= series[1] <= series[2]
        assert result.reclaimed_at_half[2.5] > 0
        assert "Fig. 8" in result.render()


class TestFig13:
    def test_tight_limits_cost_space(self):
        result = fig13_space_vs_dblimit.run(
            TINY, lambdas=(2.5,), limit_fractions=(1 / 8, 4), seed=3
        )
        consumed = result.consumed[2.5]
        assert consumed[0] >= consumed[-1]  # tighter limit -> more space used
        assert "Fig. 13" in result.render()

    def test_generous_limit_matches_unlimited(self):
        result = fig13_space_vs_dblimit.run(
            TINY, lambdas=(2.5,), limit_fractions=(8,), seed=4
        )
        assert result.consumed[2.5][0] == pytest.approx(
            result.unlimited_consumed[2.5], rel=0.02
        )


class TestFig14:
    def test_leaf_tables_grow_sublinearly(self, growth):
        result = fig14_leaftable_vs_size.run(TINY, lambdas=LAMBDAS, growth=growth)
        series = result.mean_series()["Lambda=2.5"]
        assert series[-1] > series[0]  # grows
        ratio = series[-1] / series[0]
        assert ratio < 80 / 40  # sublinear in L
        assert "Fig. 14" in result.render()


class TestFig15:
    def test_larger_system_larger_tables(self, growth):
        result = fig15_leaftable_cdf.run(TINY, lambdas=LAMBDAS, growth=growth)
        for lam in LAMBDAS:
            assert (
                result.cdfs_large[lam].mean >= result.cdfs_small[lam].mean * 0.8
            )
        assert "Fig. 15a" in result.render() and "Fig. 15b" in result.render()

    def test_low_lambda_has_more_empty_tables(self, growth):
        result = fig15_leaftable_cdf.run(TINY, lambdas=LAMBDAS, growth=growth)
        assert result.nearly_empty_fraction(1.5) >= result.nearly_empty_fraction(2.5)


class TestModelCheck:
    def test_measurements_near_predictions(self):
        result = model_check.run(TINY, seed=5, record_count=600)
        assert result.measured_table_mean == pytest.approx(
            result.predicted_table_mean, rel=0.6
        )
        assert result.measured_loss <= max(3 * result.predicted_loss, 0.3)
        assert "Eq. 13" in result.render()


class TestAttackCheck:
    def test_attack_reduces_redundancy(self):
        result = attack_check.run(TINY, sybil_fraction=0.4, record_count=150, seed=6)
        assert result.attacked_measured < result.baseline_redundancy
        assert result.victim_width_after >= result.victim_width_before
        assert "Eq. 20" in result.render()
