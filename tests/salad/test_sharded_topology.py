"""Sharded engine x topology: the uniformity contract.

The sharded barrier advances all shards one delivery window per step, which
is sound only when every reachable machine pair shares one delay.  A
uniform topology (all reachable classes the same tick count) must therefore
run sharded *and* be trace-identical to the single-process engine; a
mixed-class topology must be refused loudly (ShardingUnavailable), with
``make_salad`` degrading to the single-process engine under a warning --
never silently mis-ordering.
"""

import pytest

from repro.salad.salad import Salad, SaladConfig
from repro.salad.sharded import ShardedSimulation, ShardingUnavailable, make_salad
from repro.sim.topology import Topology, parse_topology

from tests.salad.test_sharded_golden import (
    LEAVES,
    _config,
    _drive_build_insert,
)


def uniform_two_sites() -> Topology:
    # Two sites, single-rack: rack and wan both 3 ticks of a 0.5 quantum --
    # multi-site (wan links exist, placement spreads) yet uniform.
    return Topology(
        sites=2,
        racks_per_site=1,
        rack_ticks=3,
        lan_ticks=3,
        wan_ticks=3,
        quantum=0.5,
        name="uniform-2site",
    )


class TestNonUniformGate:
    def test_sharded_refuses_mixed_latency_classes(self):
        config = SaladConfig(seed=1, topology=parse_topology("corporate"), shard_workers=2)
        with pytest.raises(ShardingUnavailable, match="multiple latency classes"):
            ShardedSimulation(config)

    def test_make_salad_degrades_with_warning(self):
        config = SaladConfig(seed=1, topology=parse_topology("corporate"), shard_workers=2)
        with pytest.warns(RuntimeWarning, match="sharding unavailable"):
            engine = make_salad(config)
        assert isinstance(engine, Salad)
        assert engine.network.topology is config.topology

    def test_uniform_topology_passes_the_gate(self):
        assert uniform_two_sites().is_uniform()
        config = _config(topology=uniform_two_sites(), shard_workers=2)
        sim = ShardedSimulation(config)
        sim.shutdown()


class TestUniformTopologyGolden:
    @pytest.fixture(scope="class")
    def single(self):
        return _drive_build_insert(Salad(_config(topology=uniform_two_sites())))

    @pytest.fixture(scope="class")
    def sharded(self):
        return _drive_build_insert(
            ShardedSimulation(_config(topology=uniform_two_sites(), shard_workers=2))
        )

    def test_trace_identity(self, single, sharded):
        assert sharded == single

    def test_class_counters_present_and_merged(self, single, sharded):
        sent = {
            name: value
            for name, value in single["metric_counters"].items()
            if name.startswith("salad.network.class_sent")
        }
        assert sent and sum(sent.values()) > 0
        for name, value in sent.items():
            assert sharded["metric_counters"][name] == value


class TestUniformWindowClock:
    def test_sharded_clock_is_tick_exact(self):
        # The coordinator's clock must advance tick * quantum, matching the
        # single-process integer-window scheduler exactly (no float drift).
        topo = uniform_two_sites()
        single = Salad(_config(topology=topo))
        sharded = ShardedSimulation(_config(topology=topo, shard_workers=2))
        try:
            single.build(LEAVES)
            sharded.build(LEAVES)
            assert sharded.now == single.network.scheduler.now
            ratio = sharded.now / topo.quantum
            assert ratio == round(ratio)  # whole number of quanta
        finally:
            single.shutdown()
            sharded.shutdown()
