"""Shared contract suite for the record-store backends.

Every backend -- the in-memory :class:`RecordDatabase`, the sqlite store,
and the append-log (WAL) store -- must be observably identical for
in-memory behavior: same associative-insert semantics, same duplicate-match
return order, same capacity-eviction policy, same iteration order.  The
durable backends additionally pin reopen-after-close, crash (unflushed tail
lost, flushed records kept), and WAL torn-tail recovery.
"""

import random
import struct
import zlib

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.storage import (
    BACKENDS,
    WAL_MAGIC,
    PagedWalRecordStore,
    SqliteRecordStore,
    WalRecordStore,
    make_record_store,
)

DURABLE = tuple(b for b in BACKENDS if b != "memory")


def rec(size: int, content: int = 0, location: int = 1) -> SaladRecord:
    return SaladRecord(
        fingerprint=synthetic_fingerprint(size, content), location=location
    )


def make(backend, tmp_path, capacity=None, name="store"):
    return make_record_store(backend, capacity=capacity, db_dir=tmp_path, name=name)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestContract:
    def test_insert_lookup_roundtrip(self, backend, tmp_path):
        store = make(backend, tmp_path)
        r = rec(100, content=5, location=42)
        stored, matches = store.insert(r)
        assert stored and matches == []
        assert len(store) == 1
        assert r.fingerprint in store
        assert store.locations(r.fingerprint) == {42}
        assert store.has_location(r.fingerprint, 42)
        assert not store.has_location(r.fingerprint, 43)
        store.close()

    def test_duplicate_insert_is_a_noop(self, backend, tmp_path):
        store = make(backend, tmp_path)
        r = rec(100, location=42)
        store.insert(r)
        stored, matches = store.insert(r)
        assert not stored
        assert matches == [r]
        assert len(store) == 1
        store.close()

    def test_matches_are_pre_insert_and_sorted_by_location(self, backend, tmp_path):
        store = make(backend, tmp_path)
        for location in (9, 3, 7):
            store.insert(rec(100, location=location))
        stored, matches = store.insert(rec(100, location=5))
        assert stored
        assert [m.location for m in matches] == [3, 7, 9]  # 5 not among them
        assert all(m.fingerprint == rec(100).fingerprint for m in matches)
        store.close()

    def test_records_iterate_in_sort_key_then_location_order(self, backend, tmp_path):
        store = make(backend, tmp_path)
        inserted = [rec(300, location=2), rec(100, location=9), rec(100, location=4)]
        for r in inserted:
            store.insert(r)
        out = list(store.records())
        assert out == sorted(inserted, key=lambda r: (r.sort_key(), r.location))
        store.close()

    def test_capacity_evicts_lowest_fingerprint(self, backend, tmp_path):
        store = make(backend, tmp_path, capacity=3)
        for size in (10, 20, 30):
            store.insert(rec(size))
        stored, _ = store.insert(rec(40))
        assert stored
        assert len(store) == 3
        assert store.evictions == 1
        assert [r.fingerprint.size for r in store.records()] == [20, 30, 40]
        store.close()

    def test_capacity_rejects_record_below_all_stored(self, backend, tmp_path):
        store = make(backend, tmp_path, capacity=3)
        for size in (10, 20, 30):
            store.insert(rec(size))
        stored, _ = store.insert(rec(5))
        assert not stored
        assert store.rejections == 1
        assert [r.fingerprint.size for r in store.records()] == [10, 20, 30]
        store.close()

    def test_eviction_ties_break_by_location(self, backend, tmp_path):
        store = make(backend, tmp_path, capacity=2)
        store.insert(rec(10, location=8))
        store.insert(rec(10, location=3))
        store.insert(rec(20, location=1))
        assert [(r.fingerprint.size, r.location) for r in store.records()] == [
            (10, 8),
            (20, 1),
        ]
        store.close()

    def test_remove_location_drops_all_of_a_machine(self, backend, tmp_path):
        store = make(backend, tmp_path)
        store.insert(rec(10, location=1))
        store.insert(rec(20, location=1))
        store.insert(rec(20, location=2))
        assert store.remove_location(1) == 2
        assert store.remove_location(1) == 0
        assert [(r.fingerprint.size, r.location) for r in store.records()] == [(20, 2)]
        store.close()

    def test_insert_many_matches_singles(self, backend, tmp_path):
        records = [rec(10 + i % 4, content=i % 3, location=i % 5) for i in range(40)]
        singles = make(backend, tmp_path, capacity=6, name="singles")
        batched = make(backend, tmp_path, capacity=6, name="batched")
        one_by_one = [(r, *singles.insert(r)) for r in records]
        assert batched.insert_many(records) == one_by_one
        assert list(singles.records()) == list(batched.records())
        singles.close()
        batched.close()


class TestBackendEquivalence:
    def test_random_op_stream_is_bit_identical(self, tmp_path):
        rng = random.Random(7)
        ops = []
        for _ in range(400):
            if rng.random() < 0.85:
                ops.append(
                    ("insert", rec(rng.randrange(1, 30), rng.randrange(3), rng.randrange(6)))
                )
            else:
                ops.append(("remove", rng.randrange(6)))
        outcomes = {}
        for backend in BACKENDS:
            store = make(backend, tmp_path, capacity=10, name=backend)
            trace = []
            for op, arg in ops:
                if op == "insert":
                    trace.append(store.insert(arg))
                else:
                    trace.append(store.remove_location(arg))
            outcomes[backend] = (
                trace,
                list(store.records()),
                store.evictions,
                store.rejections,
            )
            store.close()
        assert (
            outcomes["memory"]
            == outcomes["sqlite"]
            == outcomes["wal"]
            == outcomes["wal-paged"]
        )


class TestDurability:
    @pytest.mark.parametrize("backend", DURABLE)
    def test_reopen_after_close_recovers_everything(self, backend, tmp_path):
        store = make(backend, tmp_path, capacity=8)
        records = [rec(10 + i, location=i) for i in range(12)]  # 4 evictions
        for r in records:
            store.insert(r)
        expected = list(store.records())
        store.close()
        reopened = make(backend, tmp_path, capacity=8)
        assert list(reopened.records()) == expected
        # Eviction/rejection counters are session statistics, not state.
        assert reopened.evictions == 0 and reopened.rejections == 0
        reopened.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_crash_loses_only_the_unflushed_tail(self, backend, tmp_path):
        store = make(backend, tmp_path)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        store.flush()
        for i in range(5):
            store.insert(rec(100 + i, location=1))
        assert store.pending_records == 5
        store.crash()
        reopened = make(backend, tmp_path)
        assert [r.fingerprint.size for r in reopened.records()] == list(range(10, 20))
        reopened.close()

    def test_memory_crash_loses_everything(self, tmp_path):
        store = make("memory", tmp_path)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        assert store.pending_records == 10  # nothing is ever durable
        store.crash()
        assert len(make("memory", tmp_path)) == 0


class TestWalRecovery:
    def _populate(self, tmp_path, n=10):
        store = WalRecordStore(tmp_path / "t.wal")
        for i in range(n):
            store.insert(rec(10 + i, location=1))
        store.close()
        return tmp_path / "t.wal"

    def test_torn_final_record_is_dropped_not_fatal(self, tmp_path):
        path = self._populate(tmp_path)
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            # A truncated frame: valid header promising more payload than
            # exists -- what a crash mid-append leaves behind.
            fh.write(struct.pack(">BI", 0x01, 500) + b"\x00" * 12)
        store = WalRecordStore(path)
        assert len(store) == 10
        assert store.recovered_records == 10
        assert store.torn_bytes_dropped == 17
        assert path.stat().st_size == intact  # tail trimmed off the file
        store.close()

    def test_corrupt_crc_drops_entry_and_everything_after(self, tmp_path):
        path = self._populate(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a CRC byte of the final entry
        path.write_bytes(data)
        store = WalRecordStore(path)
        assert len(store) == 9
        assert store.torn_bytes_dropped > 0
        store.close()

    def test_garbage_file_is_reset_not_fatal(self, tmp_path):
        path = tmp_path / "t.wal"
        path.write_bytes(b"not a wal at all")
        store = WalRecordStore(path)
        assert len(store) == 0
        assert store.torn_bytes_dropped == 16
        store.insert(rec(10, location=1))
        store.close()
        assert path.read_bytes().startswith(WAL_MAGIC)

    def test_replay_reruns_the_capacity_policy(self, tmp_path):
        path = tmp_path / "t.wal"
        store = WalRecordStore(path, capacity=4)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        expected = list(store.records())
        store.close()
        reopened = WalRecordStore(path, capacity=4)
        assert list(reopened.records()) == expected
        reopened.close()

    def test_compaction_rewrites_log_as_live_snapshot(self, tmp_path):
        path = tmp_path / "t.wal"
        store = WalRecordStore(path)
        store._COMPACT_FLOOR = 16  # shrink the floor so a small test triggers it
        for round_ in range(20):
            for i in range(8):
                store.insert(rec(10 + i, content=round_, location=1))
            store.remove_location(1)
        assert store.log_ops <= store._compact_ratio * max(1, len(store)) + 8
        expected = list(store.records())
        store.close()
        reopened = WalRecordStore(path)
        assert list(reopened.records()) == expected
        reopened.close()

    def test_crash_discards_buffered_appends(self, tmp_path):
        path = tmp_path / "t.wal"
        store = WalRecordStore(path, sync_every=1000)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        assert store.pending_records == 10
        store.crash()
        reopened = WalRecordStore(path)
        assert len(reopened) == 0
        reopened.close()


class TestPagedWalRecovery:
    """The paged store shares the WAL's recovery guarantees and adds paging.

    Same torn-tail / corrupt-CRC / garbage-file matrix as TestWalRecovery
    (same log format), plus the paged-specific contracts: cache misses read
    the record back from the log byte-identically, the LRU stays bounded,
    and compaction remaps every index entry to its post-rewrite offset.
    """

    def _populate(self, tmp_path, n=10, **kwargs):
        store = PagedWalRecordStore(tmp_path / "t.wal", **kwargs)
        for i in range(n):
            store.insert(rec(10 + i, location=1))
        store.close()
        return tmp_path / "t.wal"

    def test_torn_final_record_is_dropped_not_fatal(self, tmp_path):
        path = self._populate(tmp_path)
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(struct.pack(">BI", 0x01, 500) + b"\x00" * 12)
        store = PagedWalRecordStore(path)
        assert len(store) == 10
        assert store.recovered_records == 10
        assert store.torn_bytes_dropped == 17
        assert path.stat().st_size == intact  # tail trimmed off the file
        # The trimmed file must still page records back correctly.
        assert [r.fingerprint.size for r in store.records()] == list(range(10, 20))
        store.close()

    def test_corrupt_crc_drops_entry_and_everything_after(self, tmp_path):
        path = self._populate(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a CRC byte of the final entry
        path.write_bytes(data)
        store = PagedWalRecordStore(path)
        assert len(store) == 9
        assert store.torn_bytes_dropped > 0
        store.close()

    def test_garbage_file_is_reset_not_fatal(self, tmp_path):
        path = tmp_path / "t.wal"
        path.write_bytes(b"not a wal at all")
        store = PagedWalRecordStore(path)
        assert len(store) == 0
        assert store.torn_bytes_dropped == 16
        store.insert(rec(10, location=1))
        store.close()
        assert path.read_bytes().startswith(WAL_MAGIC)

    def test_replay_reruns_the_capacity_policy(self, tmp_path):
        path = tmp_path / "t.wal"
        store = PagedWalRecordStore(path, capacity=4)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        expected = list(store.records())
        store.close()
        reopened = PagedWalRecordStore(path, capacity=4)
        assert list(reopened.records()) == expected
        reopened.close()

    def test_wal_and_paged_open_each_others_files(self, tmp_path):
        # Same format, same extension: a log written by one class must
        # recover identically under the other.
        store = WalRecordStore(tmp_path / "t.wal", capacity=6)
        for i in range(9):
            store.insert(rec(10 + i, location=i))
        expected = list(store.records())
        store.close()
        paged = PagedWalRecordStore(tmp_path / "t.wal", capacity=6)
        assert list(paged.records()) == expected
        paged.insert(rec(99, location=99))
        expected = list(paged.records())
        paged.close()
        plain = WalRecordStore(tmp_path / "t.wal", capacity=6)
        assert list(plain.records()) == expected
        plain.close()

    def test_cache_miss_reads_record_back_from_log(self, tmp_path):
        store = PagedWalRecordStore(tmp_path / "t.wal", cache_records=2)
        inserted = [rec(10 + i, content=i, location=i) for i in range(8)]
        for r in inserted:
            store.insert(r)
        store.flush()
        before = store.page_misses
        # Only 2 of 8 records can be cached; looking every record up again
        # must page the rest in from the file, byte-identically.
        for r in inserted:
            assert store.locations(r.fingerprint) == {r.location}
        assert store.page_misses > before
        assert list(store.records()) == sorted(
            inserted, key=lambda r: (r.sort_key(), r.location)
        )
        store.close()

    def test_cache_stays_bounded(self, tmp_path):
        store = PagedWalRecordStore(tmp_path / "t.wal", cache_records=4)
        for i in range(100):
            store.insert(rec(10 + i, location=i))
        assert len(store._cache) <= 4
        assert len(store) == 100
        store.close()

    def test_unflushed_records_are_served_from_the_buffer(self, tmp_path):
        store = PagedWalRecordStore(
            tmp_path / "t.wal", sync_every=1000, cache_records=1
        )
        inserted = [rec(10 + i, location=i) for i in range(6)]
        for r in inserted:
            store.insert(r)
        # Nothing written out yet; a cache miss must parse the append buffer.
        assert store.sync_writes == 0
        for r in inserted:
            assert store.has_location(r.fingerprint, r.location)
        store.close()

    def test_compaction_remaps_offsets_and_preserves_reads(self, tmp_path):
        path = tmp_path / "t.wal"
        store = PagedWalRecordStore(path, cache_records=2)
        store._COMPACT_FLOOR = 16  # shrink the floor so a small test triggers it
        for round_ in range(20):
            for i in range(8):
                store.insert(rec(10 + i, content=round_, location=1))
            store.remove_location(1)
        assert store.compactions > 0
        assert store.log_ops <= store._compact_ratio * max(1, len(store)) + 8
        expected = list(store.records())
        # Every index entry must point at a valid post-compaction offset:
        # page everything back in through the remapped index.
        for r in expected:
            assert store.has_location(r.fingerprint, r.location)
        store.close()
        reopened = PagedWalRecordStore(path)
        assert list(reopened.records()) == expected
        reopened.close()

    def test_crash_discards_buffered_appends(self, tmp_path):
        path = tmp_path / "t.wal"
        store = PagedWalRecordStore(path, sync_every=1000)
        for i in range(10):
            store.insert(rec(10 + i, location=1))
        assert store.pending_records == 10
        store.crash()
        reopened = PagedWalRecordStore(path)
        assert len(reopened) == 0
        reopened.close()

    def test_index_survives_heavy_churn(self, tmp_path):
        # Exercises tombstone reuse and same-size index rebuilds: many
        # insert/remove rounds over a small live set.
        store = PagedWalRecordStore(tmp_path / "t.wal")
        store._COMPACT_FLOOR = 10**9  # keep compaction out of this test
        rng = random.Random(3)
        live = {}
        for step in range(600):
            if live and rng.random() < 0.45:
                location = rng.choice(sorted({r.location for r in live.values()}))
                removed = store.remove_location(location)
                expected_removed = [k for k, r in live.items() if r.location == location]
                assert removed == len(expected_removed)
                for k in expected_removed:
                    del live[k]
            else:
                r = rec(10 + step % 40, content=step % 7, location=step % 9)
                stored, _ = store.insert(r)
                key = (r.sort_key(), r.location)
                assert stored == (key not in live)
                live[key] = r
        assert list(store.records()) == [live[k] for k in sorted(live)]
        store.close()


class TestSqliteIndexing:
    def test_eviction_probe_uses_the_primary_key(self, tmp_path):
        store = SqliteRecordStore(tmp_path / "t.sqlite", capacity=4)
        (plan,) = {
            row[3]
            for row in store._conn.execute(
                "EXPLAIN QUERY PLAN SELECT sort_key, location FROM records"
                " ORDER BY sort_key, location LIMIT 1"
            )
        }
        # WITHOUT ROWID: the PK *is* the table's B-tree, so the probe must
        # scan it directly -- no sort step, no temp B-tree.
        assert "USING INDEX" not in plan.upper() or "PRIMARY KEY" in plan.upper()
        assert "USE TEMP B-TREE" not in plan.upper()
        store.close()

    def test_remove_location_uses_the_location_index(self, tmp_path):
        store = SqliteRecordStore(tmp_path / "t.sqlite")
        plans = [
            row[3]
            for row in store._conn.execute(
                "EXPLAIN QUERY PLAN DELETE FROM records WHERE location = x'00'"
            )
        ]
        assert any("records_by_location" in p for p in plans)
        store.close()
