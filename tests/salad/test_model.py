"""The analytic model of section 4 (Eqs. 5, 8, 13, 14, 17, 20)."""

import math

import pytest

from repro.salad.model import (
    actual_redundancy,
    attacked_redundancy,
    expected_leaf_table_size,
    expected_leaf_table_size_exact_width,
    expected_records_per_leaf,
    fingerprint_collision_probability,
    join_message_count,
    loss_probability,
)


class TestRedundancy:
    def test_eq5_band(self):
        for system_size in (4, 17, 585, 4096, 9999):
            for target in (1.5, 2.0, 2.5):
                lam = actual_redundancy(system_size, target)
                assert target <= lam < 2 * target

    def test_eq8_records_per_leaf(self):
        # R = lambda * F / L; constant as the system scales with F ~ L.
        r_small = expected_records_per_leaf(585, 585 * 100, 2.0)
        r_large = expected_records_per_leaf(2340, 2340 * 100, 2.0)
        assert r_small == pytest.approx(r_large, rel=0.3)


class TestLeafTableSize:
    def test_paper_example(self):
        """Section 4.3: L = 10,000, lambda = 3, D = 2 -> ~350 entries."""
        # The paper's example uses lambda (actual) = 3 directly:
        lam = 3.0
        t = 2 * lam * math.sqrt(10_000 / lam) - 2 * lam + lam
        assert t == pytest.approx(343, abs=5)
        # Our function takes Lambda (target); with Lambda = 3 the actual
        # redundancy at L = 10,000 is ~4.88, giving a larger table.
        assert expected_leaf_table_size(10_000, 3.0, 2) > 300

    def test_sqrt_scaling(self):
        t1 = expected_leaf_table_size(1000, 2.0, 2)
        t2 = expected_leaf_table_size(4000, 2.0, 2)
        assert t2 / t1 == pytest.approx(2.0, rel=0.25)

    def test_exact_width_ripple(self):
        """At fixed W the table grows linearly with L; stepping W drops it --
        the sawtooth of Fig. 14."""
        before_step = expected_leaf_table_size_exact_width(1023, 8, 2)
        after_step = expected_leaf_table_size_exact_width(1024, 9, 2)
        assert after_step < before_step


class TestLossProbability:
    def test_paper_example(self):
        """Section 4.3: lambda = 3 and D = 2 gives P_loss ~= 10%."""
        assert loss_probability(3.0, 2) == pytest.approx(0.0975, abs=0.005)

    def test_one_dimension(self):
        assert loss_probability(3.0, 1) == pytest.approx(math.exp(-3.0))

    def test_monotone_in_dimensions(self):
        assert loss_probability(3.0, 3) > loss_probability(3.0, 2)

    def test_monotone_in_redundancy(self):
        assert loss_probability(2.0, 2) > loss_probability(4.0, 2)


class TestJoinMessages:
    def test_eq17_shape(self):
        # M = D * lambda^(1-1/D) * L^(1/D): quadrupling L doubles M at D=2.
        m1 = join_message_count(1000, 2.0, 2)
        m2 = join_message_count(4000, 2.0, 2)
        assert m2 / m1 == pytest.approx(2.0, rel=0.3)


class TestAttack:
    def test_eq20(self):
        assert attacked_redundancy(3.0, 0, 100, 2) == 3.0
        assert attacked_redundancy(3.0, 50, 100, 2) == pytest.approx(0.75)

    def test_higher_dimensionality_more_vulnerable(self):
        """Section 4.7: increasing D increases attack susceptibility."""
        d2 = attacked_redundancy(3.0, 30, 100, 2)
        d3 = attacked_redundancy(3.0, 30, 100, 3)
        assert d3 < d2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            attacked_redundancy(3.0, -1, 100, 2)
        with pytest.raises(ValueError):
            attacked_redundancy(3.0, 1, 0, 2)


class TestCollisions:
    def test_vanishing_at_paper_scale(self):
        assert fingerprint_collision_probability(10_514_105) < 1e-16

    def test_quadratic_growth(self):
        assert fingerprint_collision_probability(2000) == pytest.approx(
            4 * fingerprint_collision_probability(1000)
        )
