"""Fig. 5 corner cases, driven with hand-constructed identifiers.

"There are several annoying corner cases, which are handled appositely by
the pseudo-code in Fig. 5."  These tests pin the branch behavior with
controlled coordinates: who forwards where, who welcomes, and who stays
silent.
"""

import pytest

from repro.salad.ids import compose_cell_id
from repro.salad.leaf import SaladLeaf
from repro.salad.protocol import JOIN, WELCOME, JoinPayload
from repro.sim.events import EventScheduler
from repro.sim.network import Network
from repro.sim.tracer import NetworkTracer

W, D = 4, 2


def identifier(c0, c1, high=0):
    return (high << W) | compose_cell_id([c0, c1], W, D)


class Harness:
    """A hand-wired constellation of leaves with pinned width W."""

    def __init__(self):
        self.network = Network(EventScheduler())
        self.tracer = NetworkTracer(self.network)
        self.leaves = {}

    def leaf(self, c0, c1, high=0) -> SaladLeaf:
        ident = identifier(c0, c1, high)
        leaf = SaladLeaf(ident, self.network, target_redundancy=2.0, dimensions=D)
        leaf.width = W
        leaf._rebuild_index()
        self.leaves[ident] = leaf
        return leaf

    def connect(self, a: SaladLeaf, b: SaladLeaf) -> None:
        a.add_leaf(b.identifier, recalculate=False)
        b.add_leaf(a.identifier, recalculate=False)

    def deliver_join(self, to: SaladLeaf, sender: int, new_leaf: int) -> None:
        self.network.send(sender, to.identifier, JOIN, JoinPayload(sender, new_leaf))
        self.network.run()

    def sent(self, kind):
        return self.tracer.by_kind(kind)


class TestWelcomeDecision:
    def test_cell_aligned_leaf_welcomes(self):
        h = Harness()
        extant = h.leaf(0b10, 0b01)
        new_id = identifier(0b10, 0b01, high=7)
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        welcomes = h.sent(WELCOME)
        assert [m.recipient for m in welcomes] == [new_id]

    def test_vector_aligned_leaf_welcomes(self):
        h = Harness()
        extant = h.leaf(0b10, 0b01)
        new_id = identifier(0b11, 0b01)  # differs on axis 0 only
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        assert [m.recipient for m in h.sent(WELCOME)] == [new_id]

    def test_unaligned_leaf_does_not_welcome(self):
        h = Harness()
        extant = h.leaf(0b10, 0b01)
        new_id = identifier(0b11, 0b11)  # differs on both axes
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        assert h.sent(WELCOME) == []


class TestForwardingDirections:
    def test_minimally_aligned_leaf_initiates_batches(self):
        """delta = effective D: one batch per mismatching dimension, each to
        leaves matching the new leaf's coordinate on that axis."""
        h = Harness()
        black = h.leaf(0b10, 0b01)
        column_peer = h.leaf(0b00, 0b01)  # axis-0 vector of black, c0 = 00
        row_peer = h.leaf(0b10, 0b11)  # axis-1 vector of black, c1 = 11
        h.connect(black, column_peer)
        h.connect(black, row_peer)
        new_id = identifier(0b00, 0b11)  # differs from black on both axes
        h.deliver_join(black, sender=new_id, new_leaf=new_id)
        joins = [m for m in h.sent(JOIN) if m.sender == black.identifier]
        targets = {m.recipient for m in joins}
        assert targets == {column_peer.identifier, row_peer.identifier}

    def test_vector_aligned_leaf_broadcasts_whole_vector(self):
        """delta = 1 receiving from a less-aligned sender: forward to every
        leaf in the shared vector (that vector will contain the new leaf)."""
        h = Harness()
        target_vector_leaf = h.leaf(0b00, 0b11)
        peer_same_vector = h.leaf(0b01, 0b11)  # axis-0 vector
        peer_other_vector = h.leaf(0b00, 0b01)  # axis-1 vector: must not get it
        h.connect(target_vector_leaf, peer_same_vector)
        h.connect(target_vector_leaf, peer_other_vector)
        new_id = identifier(0b10, 0b11)  # in target's axis-0 vector
        # Sender: a leaf aligned with n on neither axis (delta' = 2 > 1).
        sender = identifier(0b01, 0b00)
        h.deliver_join(target_vector_leaf, sender=sender, new_leaf=new_id)
        joins = [m for m in h.sent(JOIN) if m.sender == target_vector_leaf.identifier]
        assert {m.recipient for m in joins} == {peer_same_vector.identifier}

    def test_equal_alignment_forwards_nothing(self):
        """delta' == delta: the sender's other recipients cover the paths."""
        h = Harness()
        extant = h.leaf(0b00, 0b11)
        peer = h.leaf(0b01, 0b11)
        h.connect(extant, peer)
        new_id = identifier(0b10, 0b11)
        sender = identifier(0b11, 0b11)  # also delta = 1 with n, same axis
        h.deliver_join(extant, sender=sender, new_leaf=new_id)
        joins = [m for m in h.sent(JOIN) if m.sender == extant.identifier]
        assert joins == []

    def test_cell_aligned_contact_forwards_up(self):
        """The initially contacted leaf being cell-aligned with the new leaf
        must kick the join *up* one degree (to leaves in a foreign cell),
        never directly out to its own vectors."""
        h = Harness()
        extant = h.leaf(0b10, 0b01)
        foreign_row = h.leaf(0b10, 0b00)  # axis-1 vector, c1 = 00
        foreign_col = h.leaf(0b01, 0b01)  # axis-0 vector, c0 = 01
        h.connect(extant, foreign_row)
        h.connect(extant, foreign_col)
        new_id = identifier(0b10, 0b01, high=3)  # same cell as extant
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        joins = [m for m in h.sent(JOIN) if m.sender == extant.identifier]
        assert len(joins) > 0
        for m in joins:
            # Every up-hop target is NOT cell-aligned with the new leaf.
            assert (m.recipient & ((1 << W) - 1)) != (new_id & ((1 << W) - 1))

    def test_duplicate_join_suppressed(self):
        h = Harness()
        extant = h.leaf(0b10, 0b01)
        new_id = identifier(0b10, 0b01, high=9)
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        first = len(h.sent(WELCOME))
        h.deliver_join(extant, sender=new_id, new_leaf=new_id)
        assert len(h.sent(WELCOME)) == first  # no second welcome

    def test_own_join_echo_ignored(self):
        h = Harness()
        leaf = h.leaf(0b10, 0b01)
        h.deliver_join(leaf, sender=leaf.identifier, new_leaf=leaf.identifier)
        assert h.sent(WELCOME) == []
        # Only the injected join appears in the trace; the leaf sent nothing.
        assert len(h.sent(JOIN)) == 1
