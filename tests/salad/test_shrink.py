"""System shrinkage: the Fig. 6 width-decrease path with leaf requests.

Growth exercises only the width-increase loop; these tests drive the
decrease loop (fold the hypercube, request newly vector-aligned leaves from
new cellmates) by removing most of a SALAD.
"""

import random

import pytest

from repro.salad.ids import cell_id_width
from repro.salad.model import expected_leaf_table_size
from repro.salad.salad import Salad, SaladConfig


@pytest.fixture(scope="module")
def shrunk_salad():
    salad = Salad(SaladConfig(target_redundancy=2.5, seed=13))
    salad.build(200)
    widths_before = salad.width_distribution()
    rng = random.Random(2)
    for victim in rng.sample(salad.alive_leaves(), 150):
        victim.depart_cleanly()
    salad.network.run()
    return salad, widths_before


class TestWidthDecrease:
    def test_widths_fold_toward_new_target(self, shrunk_salad):
        salad, widths_before = shrunk_salad
        target = cell_id_width(50, 2.5)  # 4
        widths_after = salad.width_distribution()
        assert max(widths_before) > max(widths_after)
        near_target = sum(
            count for width, count in widths_after.items() if abs(width - target) <= 1
        )
        assert near_target / 50 > 0.8

    def test_tables_recover_to_eq13(self, shrunk_salad):
        salad, _ = shrunk_salad
        sizes = salad.leaf_table_sizes()
        mean = sum(sizes) / len(sizes)
        expected = expected_leaf_table_size(50, 2.5, 2)
        assert 0.6 * expected < mean < 1.6 * expected

    def test_departed_leaves_mostly_forgotten_then_flushed(self, shrunk_salad):
        """Departure messages purge most entries immediately; the few stale
        ones that leak back in via fold-time leaf responses (a response can
        carry a peer's not-yet-purged entry) are bounded, and one refresh
        timeout removes them all."""
        salad, _ = shrunk_salad
        alive = {leaf.identifier for leaf in salad.alive_leaves()}
        stale = sum(
            1
            for leaf in salad.alive_leaves()
            for other in leaf.leaf_table
            if other not in alive
        )
        total = sum(leaf.table_size for leaf in salad.alive_leaves())
        assert stale <= 0.10 * total

        from repro.salad.maintenance import RefreshDriver

        RefreshDriver(salad, period=5.0, timeout=12.0).run_rounds(4)
        for leaf in salad.alive_leaves():
            for other in leaf.leaf_table:
                assert other in alive

    def test_records_still_routable_after_shrink(self, shrunk_salad):
        """The folded SALAD must still store and match records."""
        from repro.core.fingerprint import synthetic_fingerprint
        from repro.salad.records import SaladRecord

        salad, _ = shrunk_salad
        holders = salad.alive_leaves()[:3]
        fingerprint = synthetic_fingerprint(123_456, 777_777)
        salad.insert_records(
            {h.identifier: [SaladRecord(fingerprint, h.identifier)] for h in holders}
        )
        matched = {
            machine
            for machine, payload in salad.collected_matches()
            if payload.fingerprint == fingerprint
        }
        assert len(matched & {h.identifier for h in holders}) >= 2


class TestRepeatedResize:
    def test_grow_shrink_grow_is_stable(self):
        """Oscillating membership must not wedge widths or tables."""
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=21))
        salad.build(80)
        rng = random.Random(5)
        for victim in rng.sample(salad.alive_leaves(), 50):
            victim.depart_cleanly()
        salad.network.run()
        salad.build(120)  # regrow past the original size
        widths = salad.width_distribution()
        target = cell_id_width(120, 2.0)
        near = sum(c for w, c in widths.items() if abs(w - target) <= 1)
        assert near / 120 > 0.6
        sizes = salad.leaf_table_sizes()
        mean = sum(sizes) / len(sizes)
        expected = expected_leaf_table_size(120, 2.0, 2)
        assert 0.4 * expected < mean < 1.8 * expected
