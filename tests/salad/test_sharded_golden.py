"""Golden identity of the sub-cube sharded engine vs. the single-process one.

The sharded engine's claim (repro.salad.sharded) is *trace identity*, not
statistical equivalence: on deterministic workloads, a run sharded across N
worker processes must be message-for-message and record-for-record identical
to the same seed on the single-process :class:`Salad`.  These tests pin that
down on seeded growth, insert, and churn workloads for 2 and 4 workers,
comparing every observable the experiments read: the stored-record contents
per leaf (a superset of the stored-record multiset -- order within each
store must match too), collected duplicate matches, per-machine message
totals, leaf-table sizes, width distribution, and the global network
counters including drops.

The baselines use ``Salad(config)`` with its *default* network: passing an
explicit network would skip the master-RNG draw that seeds it, changing
every subsequent identifier draw, and the sharded coordinator mirrors the
default construction's consumption sequence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint
from repro.obs.registry import MetricsRegistry
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.sharded import ShardedSimulation, make_salad

LEAVES = 24
RECORDS_PER_LEAF = 10
CONTENT_POOL = 60  # small pool => duplicate groups => MATCH traffic to compare

#: Telemetry that measures the sharded *mechanism* (envelopes, windows) or
#: per-process incidentals, not the simulated trace; excluded from the
#: engine-identity comparison.
ENGINE_SPECIFIC_PREFIXES = ("salad.sharded.", "sim.")


def _trace_counters(registry):
    """The engine-neutral counter totals a sharded run must reproduce."""
    return {
        name: value
        for name, value in registry.counter_totals().items()
        if not name.startswith(ENGINE_SPECIFIC_PREFIXES)
    }


def _trace_histograms(registry):
    return [
        entry
        for entry in registry.to_dict()["histograms"]
        if not entry["name"].startswith(ENGINE_SPECIFIC_PREFIXES)
    ]


def _config(**overrides):
    # detailed_metrics exercises the record-flow counters in the
    # engine-identity comparison (they are opt-in, off by default).
    return SaladConfig(dimensions=2, seed=11, detailed_metrics=True, **overrides)


def _records_for(identifiers, rng, per_leaf=RECORDS_PER_LEAF):
    by_leaf = {}
    for identifier in identifiers:
        records = []
        for _ in range(per_leaf):
            content = rng.randrange(CONTENT_POOL)
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            records.append(SaladRecord(fingerprint=fingerprint, location=identifier))
        by_leaf[identifier] = records
    return by_leaf


def _observe(sim):
    """Every observable the experiment drivers read, engine-neutrally."""
    registry = MetricsRegistry()
    sim.collect_metrics(registry)
    return {
        "stored_records": sim.stored_records(),
        "matches": sim.collected_matches(),
        "message_totals": sim.message_totals(),
        "leaf_tables": sim.leaf_table_sizes(),
        "widths": sim.width_distribution(),
        "counters": sim.message_counters(),
        "total_records": sim.total_stored_records(),
        "db_sizes": sim.database_sizes(alive_only=False),
        # Harvested telemetry must agree too: the merge of per-shard
        # registries is counter- and histogram-identical to single-process.
        "metric_counters": _trace_counters(registry),
        "metric_histograms": _trace_histograms(registry),
    }


def _drive_build_insert(sim):
    """Seeded growth then one insert wave over every leaf."""
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        return _observe(sim)
    finally:
        sim.shutdown()


def _drive_churn(sim):
    """Growth, insert, clean departures, crashes, and a second insert wave.

    Departures exercise cross-shard leaf-table repair; the crash wave plus
    the second insert exercises delivery-time drops (dead recipients), so
    the dropped counter must match too -- drops are counted on the sender's
    shard in the sharded engine, summed per machine by the coordinator.
    """
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        for identifier in sorted(sim.alive_identifiers())[::4]:
            sim.depart_leaf(identifier, settle=False)
        sim.run()
        sim.crash_fraction(0.2, random.Random(99))
        sim.insert_records(
            _records_for(sim.alive_identifiers(), random.Random(17), per_leaf=1)
        )
        return _observe(sim)
    finally:
        sim.shutdown()


@pytest.fixture(scope="module")
def single_build_insert():
    return _drive_build_insert(Salad(_config()))


@pytest.fixture(scope="module")
def single_churn():
    return _drive_churn(Salad(_config()))


def _assert_identical(sharded, single):
    for key, expected in single.items():
        assert sharded[key] == expected, f"sharded engine diverges on {key}"


@pytest.mark.parametrize("workers", [2, 4])
class TestShardedGoldenTrace:
    def test_growth_and_insert_identical(self, workers, single_build_insert):
        sharded = _drive_build_insert(ShardedSimulation(_config(), workers=workers))
        _assert_identical(sharded, single_build_insert)

    def test_churn_and_crash_identical(self, workers, single_churn):
        sharded = _drive_churn(ShardedSimulation(_config(), workers=workers))
        _assert_identical(sharded, single_churn)

    def test_pickle_codec_identical(self, workers, single_build_insert):
        # The wire codec is pure transport: swapping it must not move a
        # single byte of the simulated trace.
        sharded = _drive_build_insert(
            ShardedSimulation(_config(envelope_codec="pickle"), workers=workers)
        )
        _assert_identical(sharded, single_build_insert)


@pytest.mark.parametrize("workers", [2, 4])
class TestShardedGoldenTraceDeferredWidth:
    """The flagship configuration (deferred width recalculation) under the
    overlapped exchange: the deferral changes *which* trace both engines
    produce, so each mode needs its own single-process baseline -- the
    sharded engine must match it exactly, build+insert and churn alike."""

    @pytest.fixture(scope="class")
    def deferred_build_insert(self):
        return _drive_build_insert(Salad(_config(deferred_width_recalc=True)))

    @pytest.fixture(scope="class")
    def deferred_churn(self):
        return _drive_churn(Salad(_config(deferred_width_recalc=True)))

    def test_growth_and_insert_identical(self, workers, deferred_build_insert):
        sharded = _drive_build_insert(
            ShardedSimulation(_config(deferred_width_recalc=True), workers=workers)
        )
        _assert_identical(sharded, deferred_build_insert)

    def test_churn_and_crash_identical(self, workers, deferred_churn):
        sharded = _drive_churn(
            ShardedSimulation(_config(deferred_width_recalc=True), workers=workers)
        )
        _assert_identical(sharded, deferred_churn)


class TestFactoryGolden:
    def test_make_salad_sharded_engine_is_identical(self, single_build_insert):
        # Whatever engine the factory picks for this environment (sharded,
        # or Salad after degradation), the observations must be identical.
        sim = make_salad(
            SaladConfig(dimensions=2, seed=11, shard_workers=2, detailed_metrics=True)
        )
        _assert_identical(_drive_build_insert(sim), single_build_insert)


@pytest.fixture(scope="module")
def shard_registry_dumps():
    """Per-shard registry dumps of the build+insert workload, 4 workers."""
    sim = ShardedSimulation(_config(), workers=4)
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        dumps = sim.collect_metrics(MetricsRegistry())
    finally:
        sim.shutdown()
    assert len(dumps) == 4
    return dumps


class TestRegistryMergeProperties:
    """Merging per-shard registries is order-independent and associative,
    and the merged counters equal the single-process run's (satellite of the
    telemetry layer: the sharded breakdown in a RunReport loses nothing)."""

    def _merged_counters(self, dumps, order):
        registry = MetricsRegistry()
        for index in order:
            registry.merge_dict(dumps[index])
        return _trace_counters(registry)

    @settings(deadline=None, max_examples=20)
    @given(order=st.permutations(list(range(4))))
    def test_merge_is_commutative(self, order, shard_registry_dumps, single_build_insert):
        merged = self._merged_counters(shard_registry_dumps, order)
        assert merged == single_build_insert["metric_counters"]

    def test_merge_is_associative(self, shard_registry_dumps, single_build_insert):
        # ((a+b) + (c+d)) via intermediate registries, vs the flat fold.
        left = MetricsRegistry()
        left.merge_dict(shard_registry_dumps[0])
        left.merge_dict(shard_registry_dumps[1])
        right = MetricsRegistry()
        right.merge_dict(shard_registry_dumps[2])
        right.merge_dict(shard_registry_dumps[3])
        combined = MetricsRegistry()
        combined.merge_dict(left.to_dict())
        combined.merge_dict(right.to_dict())
        assert _trace_counters(combined) == single_build_insert["metric_counters"]
        # Histograms merge exactly too (bucket-wise integer sums).
        assert _trace_histograms(combined) == single_build_insert["metric_histograms"]
