"""Cell-ID width recalculation support (Fig. 6, Eqs. 18-19)."""

import pytest

from repro.salad.width import (
    attenuated_redundancy,
    estimate_system_size,
    fold_axis,
    known_leaf_ratio,
    target_width,
)


class TestKnownLeafRatio:
    def test_width_zero_sees_everyone(self):
        assert known_leaf_ratio(0, 2) == 1.0

    def test_d1_sees_everyone(self):
        # In one dimension every leaf is vector-aligned with every other.
        for width in range(8):
            assert known_leaf_ratio(width, 1) == 1.0

    def test_eq18_d2_example(self):
        # W=4, D=2: (2^2 + 2^2 - 2 + 1) / 2^4 = 7/16
        assert known_leaf_ratio(4, 2) == pytest.approx(7 / 16)

    def test_decreases_with_width(self):
        ratios = [known_leaf_ratio(w, 2) for w in range(12)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_paper_consistency_with_eq13(self):
        """r * L tracks the Eq. 13 leaf table size (plus self).

        Eq. 13 approximates each axis vector as (L/lambda)^(1/D) cells;
        Eq. 18 uses the exact per-axis widths 2^(W_d).  The gap between them
        is the W-discretization ripple visible in Fig. 14, so the agreement
        is approximate.
        """
        from repro.salad.model import expected_leaf_table_size

        system_size, lam = 1024, 2.0
        width = 9  # floor(lg(1024/2))
        expected_table = expected_leaf_table_size(system_size, lam, 2)
        assert known_leaf_ratio(width, 2) * system_size == pytest.approx(
            expected_table + 1, rel=0.10
        )


class TestTargetWidth:
    def test_eq6(self):
        assert target_width(585, 2.0) == 8
        assert target_width(585, 2.5) == 7

    def test_floor_at_zero(self):
        assert target_width(1, 2.0) == 0
        assert target_width(0.5, 2.0) == 0
        assert target_width(-3, 2.0) == 0


class TestHysteresis:
    def test_eq19(self):
        assert attenuated_redundancy(2.0, 0.25) == pytest.approx(1.6)

    def test_attenuation_lowers_decrease_threshold(self):
        """With Lambda' < Lambda, a leaf needs a *smaller* estimate to shrink
        W than it needed to grow it -- that gap is the hysteresis band."""
        lam, xi = 2.0, 0.2
        grow_at = lam * 2**6  # estimate that makes target_width = 6
        shrink_at = attenuated_redundancy(lam, xi) * 2**6
        assert shrink_at < grow_at
        assert target_width(grow_at, lam) == 6
        assert target_width(shrink_at, attenuated_redundancy(lam, xi)) == 6

    def test_negative_damping_rejected(self):
        with pytest.raises(ValueError):
            attenuated_redundancy(2.0, -0.1)


class TestFoldAxis:
    def test_removed_bit_owns_fold_axis(self):
        # Bit W-1 belongs to coordinate (W-1) mod D.
        assert fold_axis(4, 2) == 1  # bit 3 -> axis 1
        assert fold_axis(5, 2) == 0
        assert fold_axis(6, 3) == 2

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            fold_axis(0, 2)


class TestEstimate:
    def test_inverts_ratio(self):
        # With r = 7/16 at W=4, a table of 7 (incl. self) estimates L = 16.
        assert estimate_system_size(7, 4, 2) == pytest.approx(16.0)

    def test_width_zero_estimate_is_table_size(self):
        assert estimate_system_size(5, 0, 2) == 5.0
