"""Cell-IDs and coordinate extraction (Eqs. 6, 7, 9, 10; Fig. 2)."""

import pytest

from repro.salad.ids import (
    cell_id,
    cell_id_width,
    compose_cell_id,
    coordinate,
    coordinate_width,
    coordinates,
    effective_dimensionality,
)


class TestCellIdWidth:
    def test_eq6_examples(self):
        # W = floor(lg(L / Lambda))
        assert cell_id_width(585, 2.0) == 8  # lg(292.5) = 8.19
        assert cell_id_width(585, 2.5) == 7  # lg(234) = 7.87
        assert cell_id_width(10_000, 3.0) == 11  # lg(3333) = 11.7

    def test_eq5_redundancy_band(self):
        """The floor keeps lambda = L / 2^W in [Lambda, 2*Lambda)."""
        for system_size in (3, 10, 100, 585, 9999):
            for target in (1.5, 2.0, 2.5, 3.0):
                width = cell_id_width(system_size, target)
                lam = system_size / (1 << width)
                if system_size >= target:
                    assert target <= lam < 2 * target, (system_size, target)

    def test_tiny_systems_width_zero(self):
        assert cell_id_width(1, 2.0) == 0
        assert cell_id_width(3, 2.0) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            cell_id_width(10, 0)
        with pytest.raises(ValueError):
            cell_id_width(0, 2)


class TestCellId:
    def test_low_bits(self):
        assert cell_id(0b110101, 4) == 0b0101
        assert cell_id(0b110101, 0) == 0
        assert cell_id(0b110101, 6) == 0b110101

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            cell_id(5, -1)


class TestCoordinateWidth:
    def test_fig2a_d2(self):
        # W bits split alternately: c0 gets ceil(W/2), c1 gets floor(W/2).
        assert coordinate_width(5, 2, 0) == 3
        assert coordinate_width(5, 2, 1) == 2

    def test_fig2b_d3(self):
        assert [coordinate_width(7, 3, d) for d in range(3)] == [3, 2, 2]

    def test_widths_sum_to_w(self):
        for width in range(0, 20):
            for dims in (1, 2, 3, 4):
                assert sum(coordinate_width(width, dims, d) for d in range(dims)) == width

    def test_zero_width_axes_when_w_below_d(self):
        assert coordinate_width(1, 3, 1) == 0
        assert coordinate_width(1, 3, 2) == 0

    def test_axis_out_of_range(self):
        with pytest.raises(ValueError):
            coordinate_width(4, 2, 2)


class TestCoordinate:
    def test_fig2a_worked_example(self):
        """Fig. 2a: identifier bits ...0110110 with W=5, D=2 ->
        c0 = bits 0,2,4 = 110b = 6; c1 = bits 1,3 = 01b = 1."""
        identifier = 0b0110110
        assert coordinate(identifier, 5, 2, 0) == 0b110
        assert coordinate(identifier, 5, 2, 1) == 0b01

    def test_interleaving(self):
        # identifier bits (LSB first): 1,0,1,1,0,1 -> W=6, D=2
        identifier = 0b101101
        assert coordinate(identifier, 6, 2, 0) == 0b011  # bits 0,2,4 = 1,1,0
        assert coordinate(identifier, 6, 2, 1) == 0b110  # bits 1,3,5 = 0,1,1

    def test_growth_changes_coordinate_minimally(self):
        """Widening W adds one high bit to one coordinate, leaving both
        coordinates' existing bits unchanged (the Fig. 2 design goal)."""
        identifier = 0xDEADBEEF
        for width in range(1, 16):
            for d in range(2):
                before = coordinate(identifier, width, 2, d)
                after = coordinate(identifier, width + 1, 2, d)
                w_d = coordinate_width(width, 2, d)
                assert after & ((1 << w_d) - 1) == before

    def test_d1_coordinate_is_cell_id(self):
        identifier = 0b10110
        assert coordinate(identifier, 5, 1, 0) == cell_id(identifier, 5)


class TestComposition:
    def test_compose_inverts_coordinates(self):
        identifier = 0x1234ABCD
        for width in (0, 1, 5, 8, 13):
            for dims in (1, 2, 3):
                coords = coordinates(identifier, width, dims)
                assert compose_cell_id(coords, width, dims) == cell_id(identifier, width)

    def test_oversized_coordinate_rejected(self):
        with pytest.raises(ValueError):
            compose_cell_id([4, 0], 4, 2)  # c0 has 2 bits; 4 needs 3

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            compose_cell_id([1], 4, 2)


class TestEffectiveDimensionality:
    def test_eq16(self):
        assert effective_dimensionality(0, 2) == 0
        assert effective_dimensionality(1, 2) == 1
        assert effective_dimensionality(5, 2) == 2
        assert effective_dimensionality(2, 3) == 2
