"""SaladLeaf unit behavior: leaf table, index, width recalculation."""

import pytest

from repro.salad.ids import compose_cell_id
from repro.salad.leaf import SaladLeaf
from repro.sim.events import EventScheduler
from repro.sim.network import Network


def make_leaf(identifier=0b0110, target_redundancy=2.0, dimensions=2, **kwargs):
    network = Network(EventScheduler())
    leaf = SaladLeaf(
        identifier,
        network,
        target_redundancy=target_redundancy,
        dimensions=dimensions,
        **kwargs,
    )
    return leaf, network


def with_coords(c0: int, c1: int, width: int, high: int = 0) -> int:
    return (high << width) | compose_cell_id([c0, c1], width, 2)


class TestConstruction:
    def test_initial_state(self):
        leaf, _ = make_leaf()
        assert leaf.width == 0
        assert leaf.table_size == 0
        assert leaf.estimated_system_size == 1.0

    def test_invalid_parameters(self):
        network = Network(EventScheduler())
        with pytest.raises(ValueError):
            SaladLeaf(1, network, dimensions=0)
        network2 = Network(EventScheduler())
        with pytest.raises(ValueError):
            SaladLeaf(2, network2, target_redundancy=0.5)


class TestLeafTable:
    def test_add_and_remove(self):
        leaf, _ = make_leaf()
        assert leaf.add_leaf(99, recalculate=False)
        assert leaf.knows(99)
        assert leaf.remove_leaf(99, recalculate=False)
        assert not leaf.knows(99)

    def test_add_self_rejected(self):
        leaf, _ = make_leaf(identifier=5)
        assert not leaf.add_leaf(5)

    def test_add_duplicate_rejected(self):
        leaf, _ = make_leaf()
        leaf.add_leaf(99, recalculate=False)
        assert not leaf.add_leaf(99, recalculate=False)

    def test_non_aligned_leaf_rejected(self):
        leaf, _ = make_leaf(identifier=0b0000)
        leaf.width = 4  # force a width where alignment matters
        leaf._rebuild_index()
        # Identifier differing in both coordinates is not vector-aligned.
        stranger = with_coords(0b11, 0b11, 4)
        assert not leaf.add_leaf(stranger, recalculate=False)

    def test_width_grows_with_table(self):
        """Adding many leaves raises the system-size estimate and W."""
        leaf, _ = make_leaf(target_redundancy=2.0)
        for i in range(1, 40):
            leaf.add_leaf(i << 8 | leaf.identifier & 0xFF or i)  # arbitrary ids
        assert leaf.width >= 3
        assert leaf.estimated_system_size > 20

    def test_width_change_count_tracked(self):
        leaf, _ = make_leaf()
        for i in range(1, 30):
            leaf.add_leaf(1000 + i)
        assert leaf.width_changes > 0


class TestVectorIndex:
    def test_cellmates_and_vectors(self):
        leaf, _ = make_leaf(identifier=with_coords(0b10, 0b01, 4))
        leaf.width = 4
        leaf._rebuild_index()
        cellmate = with_coords(0b10, 0b01, 4, high=1)
        same_column = with_coords(0b11, 0b01, 4)
        leaf.add_leaf(cellmate, recalculate=False)
        leaf.add_leaf(same_column, recalculate=False)
        assert cellmate in leaf._cellmates
        assert same_column in leaf._vector_members(0, 0b11)
        # Cellmates appear in vector queries for the leaf's own coordinate.
        assert cellmate in leaf._vector_members(0, 0b10)
        assert cellmate in leaf._axis_members(0)
        assert same_column in leaf._axis_members(0)
        assert same_column not in leaf._axis_members(1)


class TestRefreshAndDeparture:
    def test_flush_stale_entries(self):
        leaf, network = make_leaf()
        leaf.add_leaf(42, recalculate=False)
        network.scheduler.now = 100.0
        assert leaf.flush_stale_entries(timeout=50.0) == 1
        assert not leaf.knows(42)

    def test_fresh_entries_survive_flush(self):
        leaf, network = make_leaf()
        leaf.add_leaf(42, recalculate=False)
        assert leaf.flush_stale_entries(timeout=50.0) == 0
        assert leaf.knows(42)


class TestWidthRecalculationCost:
    """The Fig. 6 growth check must not rescan the table unless it commits."""

    def test_rejected_growth_checks_scan_nothing(self):
        import random

        rng = random.Random(11)
        leaf, _ = make_leaf(identifier=rng.randrange(1 << 24))
        joins = 0
        while joins < 1000:
            if leaf.add_leaf(rng.randrange(1 << 24)):
                joins += 1
        # Every join in the hysteresis zone used to pay a full-table survivor
        # scan; now only committed width increases do, so the scan count is
        # bounded by the number of width changes, not the number of joins.
        assert leaf.width > 0
        assert leaf.width_changes > 0
        assert leaf.survivor_scans <= leaf.width_changes

    def test_survivor_counter_matches_brute_force_after_churn(self):
        import random

        from repro.salad.alignment import mismatching_dimensions

        rng = random.Random(3)
        leaf, _ = make_leaf(identifier=0x5A5A5A)
        known = []
        for _ in range(400):
            if known and rng.random() < 0.3:
                leaf.remove_leaf(known.pop(rng.randrange(len(known))))
            else:
                identifier = rng.randrange(1 << 24)
                if leaf.add_leaf(identifier):
                    known.append(identifier)
            known = [k for k in known if leaf.knows(k)]
        expected = sum(
            1
            for other in leaf.leaf_table
            if len(
                mismatching_dimensions(
                    leaf.identifier, other, leaf.width + 1, leaf.dimensions
                )
            )
            <= 1
        )
        assert leaf._next_width_survivors == expected
