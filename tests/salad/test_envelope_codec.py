"""Round-trip and corruption matrix for the binary envelope codec.

The codec carries the sharded engine's cross-shard traffic, so two
properties are load-bearing: every encodable message must round-trip
*exactly* (trace identity depends on it), and every corruption must fail
with a typed error before any body byte is believed (the CRC gates body
interpretation).
"""

import pickle
import struct

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.envelope_codec import (
    CODEC_BINARY,
    CODEC_PICKLE,
    FLAG_FINAL,
    FRAME_VERSION,
    HEADER_BYTES,
    KIND_PICKLED,
    MAGIC,
    CodecVersionError,
    DecodedFrame,
    EnvelopeCodecError,
    EnvelopeEncoder,
    FrameChecksumError,
    TruncatedFrameError,
    decode_frame,
)
from repro.salad.protocol import (
    ALL_KINDS,
    DEPARTURE,
    JOIN,
    LEAF_REQUEST,
    LEAF_RESPONSE,
    MATCH,
    RECORD,
    RECORD_BATCH,
    REFRESH,
    WELCOME,
    WELCOME_ACK,
    JoinPayload,
    MatchPayload,
)
from repro.salad.records import SaladRecord

ID_A = 0x1234 << 140 | 0xBEEF
ID_B = (1 << 160) - 7


def _record(n: int) -> SaladRecord:
    return SaladRecord(synthetic_fingerprint(1000 + n, n), ID_A + n)


#: One message of every protocol kind, with realistic payload shapes.
ALL_KIND_MESSAGES = [
    ((0, 3), ID_A, ID_B, RECORD, (_record(1), 4)),
    ((1,), ID_B, ID_A, RECORD_BATCH, ((_record(2), 0), (_record(3), 7))),
    ((2, 0, 5), ID_A, ID_B, JOIN, JoinPayload(ID_A, ID_B)),
    ((3, 1), ID_B, ID_A, WELCOME, None),
    ((4,), ID_A, ID_B, WELCOME_ACK, None),
    ((5, 9, 9), ID_B, ID_A, LEAF_REQUEST, None),
    ((6,), ID_A, ID_B, LEAF_RESPONSE, (ID_A, ID_B, 0, 1)),
    ((7, 2), ID_B, ID_A, DEPARTURE, None),
    ((8,), ID_A, ID_B, REFRESH, None),
    ((9, 1, 1), ID_B, ID_A, MATCH, MatchPayload(synthetic_fingerprint(50, 5), ID_A)),
]


def _encode(messages, codec=CODEC_BINARY, window=12, final=False, shard=3):
    encoder = EnvelopeEncoder(codec)
    for message in messages:
        encoder.add(*message)
    return encoder, encoder.take_frame(shard, window, final=final)


class TestRoundTrip:
    @pytest.mark.parametrize("codec", [CODEC_BINARY, CODEC_PICKLE])
    def test_every_kind_round_trips_exactly(self, codec):
        encoder, frame = _encode(ALL_KIND_MESSAGES, codec=codec)
        decoded = decode_frame(frame)
        assert isinstance(decoded, DecodedFrame)
        assert decoded.source_shard == 3
        assert decoded.window == 12
        assert not decoded.final
        assert [tuple(m) for m in decoded.messages] == ALL_KIND_MESSAGES
        assert encoder.messages_total == len(ALL_KIND_MESSAGES)

    def test_binary_mode_uses_no_fallback_for_protocol_kinds(self):
        encoder, _ = _encode(ALL_KIND_MESSAGES)
        assert encoder.pickled_total == 0

    def test_pickle_mode_counts_everything_as_pickled(self):
        encoder, _ = _encode(ALL_KIND_MESSAGES, codec=CODEC_PICKLE)
        assert encoder.pickled_total == len(ALL_KIND_MESSAGES)

    def test_final_flag_round_trips(self):
        _, frame = _encode(ALL_KIND_MESSAGES[:2], final=True)
        assert decode_frame(frame).final

    def test_empty_final_frame(self):
        _, frame = _encode([], final=True)
        decoded = decode_frame(frame)
        assert decoded.final
        assert decoded.messages == []

    def test_empty_non_final_produces_no_frame(self):
        _, frame = _encode([])
        assert frame is None

    def test_take_frame_resets_staging_not_lifetime_counters(self):
        encoder, frame = _encode(ALL_KIND_MESSAGES)
        assert frame is not None
        assert encoder.count == 0
        assert encoder.messages_total == len(ALL_KIND_MESSAGES)
        # A second window reuses the encoder.
        encoder.add(*ALL_KIND_MESSAGES[0])
        second = encoder.take_frame(3, 13)
        assert [tuple(m) for m in decode_frame(second).messages] == [
            ALL_KIND_MESSAGES[0]
        ]

    def test_decoded_records_compare_equal_and_route_identically(self):
        record = _record(42)
        _, frame = _encode([((0, 0), ID_A, ID_B, RECORD, (record, 2))])
        ((_, _, _, _, (decoded_record, hops)),) = decode_frame(frame).messages
        assert decoded_record == record
        assert hops == 2
        assert decoded_record.routing_id == record.routing_id
        assert decoded_record.sort_key() == record.sort_key()


class TestPickleFallback:
    def test_unknown_kind_falls_back(self):
        message = ((0,), ID_A, ID_B, "mystery_kind", {"arbitrary": object})
        encoder, frame = _encode([message])
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == [message]

    def test_oversized_identifier_falls_back(self):
        message = ((0,), 1 << 200, ID_B, REFRESH, None)
        encoder, frame = _encode([message])
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == [message]

    def test_unexpected_payload_shape_falls_back(self):
        # A WELCOME with a payload is outside the wire contract; the codec
        # must ship it faithfully anyway.
        message = ((1, 2), ID_A, ID_B, WELCOME, ("surprise",))
        encoder, frame = _encode([message])
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == [message]

    def test_negative_hops_falls_back(self):
        message = ((0,), ID_A, ID_B, RECORD, (_record(1), -1))
        encoder, frame = _encode([message])
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == [message]

    def test_fallback_mixes_with_binary_messages(self):
        messages = [
            ALL_KIND_MESSAGES[0],
            ((0,), ID_A, ID_B, "odd", None),
            ALL_KIND_MESSAGES[1],
        ]
        encoder, frame = _encode(messages)
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == messages


class TestRecordInterning:
    def test_repeated_record_round_trips_via_backref(self):
        record = _record(1)
        messages = [
            ((0,), ID_A, ID_B, RECORD, (record, 0)),
            ((1,), ID_A, ID_B, RECORD, (record, 1)),
            ((2,), ID_B, ID_A, RECORD_BATCH, ((record, 2), (_record(2), 0))),
        ]
        encoder, frame = _encode(messages)
        assert encoder.pickled_total == 0
        decoded = decode_frame(frame).messages
        assert [tuple(m) for m in decoded] == messages
        # Backrefs decode to one shared instance per unique record.
        first = decoded[0][4][0]
        assert decoded[1][4][0] is first
        assert decoded[2][4][0][0] is first

    def test_repeats_shrink_the_frame(self):
        record = _record(1)
        repeated = [((i,), ID_A, ID_B, RECORD, (record, i)) for i in range(8)]
        distinct = [((i,), ID_A, ID_B, RECORD, (_record(i), i)) for i in range(8)]
        _, small = _encode(repeated)
        _, large = _encode(distinct)
        assert len(small) < len(large)

    def test_table_resets_between_frames(self):
        record = _record(1)
        encoder = EnvelopeEncoder(CODEC_BINARY)
        encoder.add((0,), ID_A, ID_B, RECORD, (record, 0))
        first = encoder.take_frame(0, 1)
        encoder.add((1,), ID_A, ID_B, RECORD, (record, 1))
        second = encoder.take_frame(0, 2)
        # The second frame must re-introduce the record, not backref into
        # the first frame -- frames decode independently.
        assert decode_frame(second).messages[0][4][0] == record
        assert len(second) == len(first)

    def test_fallback_rolls_back_interned_records(self):
        shared = _record(1)
        # The batch interns `shared`, then hits an unencodable entry and
        # falls back to pickle; the next message's backref must still
        # resolve (i.e. the table must not contain the rolled-back entry).
        messages = [
            ((0,), ID_A, ID_B, RECORD_BATCH, ((shared, 0), ("not a record", 1))),
            ((1,), ID_A, ID_B, RECORD, (shared, 2)),
            ((2,), ID_B, ID_A, RECORD, (shared, 3)),
        ]
        encoder, frame = _encode(messages)
        assert encoder.pickled_total == 1
        assert [tuple(m) for m in decode_frame(frame).messages] == messages

    def test_out_of_range_backref_rejected(self):
        record = _record(1)
        _, frame = _encode(
            [
                ((0,), ID_A, ID_B, RECORD, (record, 0)),
                ((1,), ID_A, ID_B, RECORD, (record, 1)),
            ]
        )
        frame = bytearray(frame)
        # The second entry's backref varint (value 1) sits right before the
        # final hops varint; bump it past the one-entry table.
        index = frame.rindex(b"\x01", HEADER_BYTES, len(frame) - 1)
        frame[index] = 9
        body = bytes(frame[HEADER_BYTES:])
        import zlib

        struct.pack_into("<I", frame, HEADER_BYTES - 4, zlib.crc32(body))
        with pytest.raises(EnvelopeCodecError, match="backref"):
            decode_frame(bytes(frame))


class TestCompactness:
    def test_binary_beats_pickle_on_record_traffic(self):
        batch = [
            ((i,), ID_A, ID_B, RECORD_BATCH, tuple((_record(j), j) for j in range(8)))
            for i in range(16)
        ]
        _, binary = _encode(batch)
        _, pickled = _encode(batch, codec=CODEC_PICKLE)
        assert len(binary) < len(pickled)


class TestCorruptionMatrix:
    def _frame(self, **kwargs):
        _, frame = _encode(ALL_KIND_MESSAGES, **kwargs)
        return frame

    def test_truncated_header(self):
        with pytest.raises(TruncatedFrameError):
            decode_frame(self._frame()[: HEADER_BYTES - 1])

    def test_truncated_body(self):
        with pytest.raises(TruncatedFrameError):
            decode_frame(self._frame()[:-5])

    def test_empty_input(self):
        with pytest.raises(TruncatedFrameError):
            decode_frame(b"")

    def test_bad_magic(self):
        frame = bytearray(self._frame())
        frame[0] ^= 0xFF
        with pytest.raises(EnvelopeCodecError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch(self):
        frame = bytearray(self._frame())
        frame[4] = FRAME_VERSION + 1
        with pytest.raises(CodecVersionError):
            decode_frame(bytes(frame))

    @pytest.mark.parametrize("codec", [CODEC_BINARY, CODEC_PICKLE])
    def test_flipped_body_byte_fails_crc(self, codec):
        frame = bytearray(self._frame(codec=codec))
        frame[HEADER_BYTES + 3] ^= 0x40
        with pytest.raises(FrameChecksumError):
            decode_frame(bytes(frame))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EnvelopeCodecError, match="beyond"):
            decode_frame(self._frame() + b"xx")

    def test_flags_survive_crc_scope(self):
        # The CRC covers the body only; header fields are structural.  A
        # corrupted FINAL flag must still decode the messages correctly
        # (the rendezvous layer, not the codec, owns flag semantics).
        frame = bytearray(self._frame())
        frame[5] ^= FLAG_FINAL
        decoded = decode_frame(bytes(frame))
        assert decoded.final
        assert [tuple(m) for m in decoded.messages] == ALL_KIND_MESSAGES

    def test_unknown_kind_code_rejected(self):
        encoder = EnvelopeEncoder(CODEC_BINARY)
        encoder.add(*ALL_KIND_MESSAGES[3])  # WELCOME: no payload bytes
        frame = bytearray(encoder.take_frame(0, 1))
        bad_code = len(ALL_KINDS)  # in the reserved gap below KIND_PICKLED
        assert bad_code != KIND_PICKLED
        frame[HEADER_BYTES] = bad_code
        # Re-stamp the CRC so only the kind code is corrupt.
        body = bytes(frame[HEADER_BYTES:])
        import zlib

        struct.pack_into("<I", frame, HEADER_BYTES - 4, zlib.crc32(body))
        with pytest.raises(EnvelopeCodecError, match="kind code"):
            decode_frame(bytes(frame))

    def test_pickled_body_count_mismatch_rejected(self):
        body = pickle.dumps([ALL_KIND_MESSAGES[0]])
        import zlib

        header = struct.pack(
            "<4sBBHIIII",
            MAGIC,
            FRAME_VERSION,
            0x02,  # FLAG_PICKLED_BODY
            0,
            1,
            5,  # claims five messages; body holds one
            len(body),
            zlib.crc32(body),
        )
        with pytest.raises(EnvelopeCodecError, match="header says"):
            decode_frame(header + body)


class TestTracedFrames:
    """The FLAG_TRACED extension: sampled trace ids riding after the body.

    Untraced frames must stay byte-identical to the pre-tracing format (the
    overwhelmingly common case pays nothing); traced frames must round-trip
    their ``(message_index, trace_ids)`` entries, decode the same messages,
    and fail the CRC on any tampering of body *or* extension.
    """

    TRACE_A = (0xDEADBEEF00000001, 0x0123456789ABCDEF)
    TRACE_B = ((1 << 64) - 1,)

    def _traced_frame(self, final=False):
        encoder = EnvelopeEncoder(CODEC_BINARY)
        encoder.stage_trace(self.TRACE_A)  # attaches to message index 0
        encoder.add(*ALL_KIND_MESSAGES[0])
        encoder.add(*ALL_KIND_MESSAGES[2])  # untraced message in between
        encoder.stage_trace(self.TRACE_B)  # attaches to message index 2
        encoder.add(*ALL_KIND_MESSAGES[1])
        return encoder, encoder.take_frame(1, 7, final=final)

    def test_round_trip_with_message_indices(self):
        _, frame = self._traced_frame()
        decoded = decode_frame(frame)
        assert decoded.trace == ((0, self.TRACE_A), (2, self.TRACE_B))
        assert [tuple(m) for m in decoded.messages] == [
            ALL_KIND_MESSAGES[0],
            ALL_KIND_MESSAGES[2],
            ALL_KIND_MESSAGES[1],
        ]

    def test_untraced_frame_is_byte_identical_and_flagless(self):
        from repro.salad.envelope_codec import FLAG_TRACED

        _, plain = _encode(ALL_KIND_MESSAGES)
        encoder = EnvelopeEncoder(CODEC_BINARY)
        for message in ALL_KIND_MESSAGES:
            encoder.add(*message)
        again = encoder.take_frame(3, 12)
        assert again == plain  # sampling off: not a single byte moves
        flags = plain[5]
        assert not flags & FLAG_TRACED
        assert decode_frame(plain).trace == ()

    def test_trace_extension_does_not_change_the_messages(self):
        # Same messages with and without staged trace ids decode equal:
        # the extension marks the envelope, never rewrites its contents.
        encoder = EnvelopeEncoder(CODEC_BINARY)
        encoder.stage_trace(self.TRACE_A)
        for message in ALL_KIND_MESSAGES:
            encoder.add(*message)
        traced = decode_frame(encoder.take_frame(3, 12))
        _, plain_frame = _encode(ALL_KIND_MESSAGES)
        plain = decode_frame(plain_frame)
        assert [tuple(m) for m in traced.messages] == [
            tuple(m) for m in plain.messages
        ]
        assert traced.trace == ((0, self.TRACE_A),)

    def test_empty_stage_trace_is_a_noop(self):
        encoder = EnvelopeEncoder(CODEC_BINARY)
        encoder.stage_trace(())
        encoder.add(*ALL_KIND_MESSAGES[0])
        frame = encoder.take_frame(0, 1)
        assert decode_frame(frame).trace == ()
        _, plain = _encode([ALL_KIND_MESSAGES[0]], shard=0, window=1)
        assert frame == plain

    def test_extension_resets_between_frames(self):
        encoder, first = self._traced_frame()
        assert decode_frame(first).trace
        encoder.add(*ALL_KIND_MESSAGES[0])
        second = encoder.take_frame(1, 8)
        assert decode_frame(second).trace == ()

    def test_traced_final_frame(self):
        _, frame = self._traced_frame(final=True)
        decoded = decode_frame(frame)
        assert decoded.final
        assert decoded.trace == ((0, self.TRACE_A), (2, self.TRACE_B))

    def test_flipped_extension_byte_fails_crc(self):
        _, frame = self._traced_frame()
        tampered = bytearray(frame)
        tampered[-3] ^= 0x10  # inside a trace id, past the body
        with pytest.raises(FrameChecksumError):
            decode_frame(bytes(tampered))

    def test_flipped_body_byte_fails_crc(self):
        _, frame = self._traced_frame()
        tampered = bytearray(frame)
        tampered[HEADER_BYTES + 2] ^= 0x08
        with pytest.raises(FrameChecksumError):
            decode_frame(bytes(tampered))

    def test_truncated_extension_rejected(self):
        _, frame = self._traced_frame()
        with pytest.raises(EnvelopeCodecError):
            decode_frame(frame[:-4])

    def test_pickle_codec_carries_the_extension_too(self):
        encoder = EnvelopeEncoder(CODEC_PICKLE)
        encoder.stage_trace(self.TRACE_B)
        encoder.add(*ALL_KIND_MESSAGES[0])
        decoded = decode_frame(encoder.take_frame(2, 4))
        assert decoded.trace == ((0, self.TRACE_B),)
        assert [tuple(m) for m in decoded.messages] == [ALL_KIND_MESSAGES[0]]
