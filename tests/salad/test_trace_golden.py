"""Causal tracing is a pure observer: golden identity + chain completeness.

Two claims pinned here.  First, sampling **never perturbs the simulated
message trace**: a traced run (any rate, either engine) reproduces every
observable of the untraced run byte-for-byte -- the sampler is a pure
predicate on the record's routing id and consumes no RNG.  Second, the
traces themselves are **causally complete**: a sampled record inserted on
one shard and stored on another yields one merged timeline whose events
span both workers, ordered insert -> envelope.stage -> envelope.deliver ->
store.
"""

import random

import pytest

from repro.core.fingerprint import Fingerprint
from repro.obs import tracing
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import build_timelines
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.sharded import ShardedSimulation

LEAVES = 16
RECORDS_PER_LEAF = 6
CONTENT_POOL = 40

#: Sharded-mechanism and per-process telemetry, excluded from identity
#: comparison (same convention as test_sharded_golden); ``sim.trace.*``
#: lives here by design -- a sampled run legitimately counts trace events.
ENGINE_SPECIFIC_PREFIXES = ("salad.sharded.", "sim.")


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    tracing.deactivate()
    yield
    tracing.deactivate()


def _config(**overrides):
    return SaladConfig(dimensions=2, seed=11, detailed_metrics=True, **overrides)


def _records_for(identifiers, rng, per_leaf=RECORDS_PER_LEAF):
    by_leaf = {}
    for identifier in identifiers:
        records = []
        for _ in range(per_leaf):
            content = rng.randrange(CONTENT_POOL)
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            records.append(SaladRecord(fingerprint=fingerprint, location=identifier))
        by_leaf[identifier] = records
    return by_leaf


def _observe(sim):
    registry = MetricsRegistry()
    sim.collect_metrics(registry)
    return {
        "stored_records": sim.stored_records(),
        "matches": sim.collected_matches(),
        "message_totals": sim.message_totals(),
        "leaf_tables": sim.leaf_table_sizes(),
        "widths": sim.width_distribution(),
        "counters": sim.message_counters(),
        "total_records": sim.total_stored_records(),
        "metric_counters": {
            name: value
            for name, value in registry.counter_totals().items()
            if not name.startswith(ENGINE_SPECIFIC_PREFIXES)
        },
    }


def _drive(sim):
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        return _observe(sim)
    finally:
        sim.shutdown()


@pytest.fixture(scope="module")
def untraced_single():
    tracing.deactivate()
    observed = _drive(Salad(_config(trace_sample_rate=0.0)))
    tracing.deactivate()
    return observed


class TestSamplingNeverPerturbs:
    """Golden identity: every engine observable, traced vs. untraced."""

    @pytest.mark.parametrize("rate", [0.05, 1.0])
    def test_traced_single_process_is_identical(self, rate, untraced_single):
        observed = _drive(Salad(_config(trace_sample_rate=rate)))
        assert observed == untraced_single

    def test_traced_sharded_is_identical(self, untraced_single):
        observed = _drive(
            ShardedSimulation(_config(trace_sample_rate=0.25), workers=2)
        )
        assert observed == untraced_single

    def test_untraced_sharded_matches_and_ships_no_events(self, untraced_single):
        sim = ShardedSimulation(_config(trace_sample_rate=0.0), workers=2)
        try:
            sim.build(LEAVES)
            sim.insert_records(
                _records_for(sim.alive_identifiers(), random.Random(5))
            )
            observed = _observe(sim)
            assert observed == untraced_single
            assert sim.take_trace_events() == []
        finally:
            sim.shutdown()
        assert tracing.take_events() == []

    def test_trace_counters_live_outside_the_identity_namespace(self):
        # sim.trace.* is per-process incidental state: present in sampled
        # runs, absent otherwise, and excluded from golden comparisons.
        registry = MetricsRegistry()
        sim = Salad(_config(trace_sample_rate=1.0))
        try:
            sim.build(8)
            sim.insert_records(
                _records_for(sim.alive_identifiers(), random.Random(5), per_leaf=2)
            )
            sim.collect_metrics(registry)
        finally:
            sim.shutdown()
        totals = registry.counter_totals()
        assert totals.get("sim.trace.records_sampled", 0) > 0
        assert totals.get("sim.trace.events_recorded", 0) > 0


def _sampled_run_events(workers):
    sim = ShardedSimulation(_config(trace_sample_rate=1.0), workers=workers)
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        sim.collect_metrics(MetricsRegistry())  # ships workers' trace events
        return sim.take_trace_events()
    finally:
        sim.shutdown()


class TestCausalChains:
    @pytest.fixture(scope="class")
    def events(self):
        tracing.deactivate()
        events = _sampled_run_events(workers=2)
        tracing.deactivate()
        return events

    def test_events_arrive_from_every_worker(self, events):
        assert {e["shard"] for e in events if e["shard"] is not None} == {0, 1}

    def test_every_timeline_begins_with_insert(self, events):
        timelines = build_timelines(events)
        assert timelines
        for entries in timelines.values():
            assert entries[0]["kind"] == "insert"

    def test_cross_shard_chains_are_complete(self, events):
        # At least one sampled record crossed shards; its merged timeline
        # must contain the full causal chain with both workers' events.
        timelines = build_timelines(events)
        complete = [
            entries
            for entries in timelines.values()
            if {e["shard"] for e in entries} == {0, 1}
        ]
        assert complete, "no sampled record crossed shards"
        chained = False
        for entries in complete:
            kinds = [e["kind"] for e in entries]
            if {"envelope.stage", "envelope.deliver", "store"} <= set(kinds):
                # stage on the sending shard precedes deliver on the receiver
                assert kinds.index("envelope.stage") < kinds.index(
                    "envelope.deliver"
                )
                assert kinds.index("envelope.deliver") < kinds.index("store")
                chained = True
        assert chained, "no complete stage->deliver->store chain found"

    def test_stores_are_flushed(self, events):
        # insert_records settles and flushes: every store.flush follows a
        # store of the same trace id.
        flushes = [e for e in events if e["kind"] == "store.flush"]
        assert flushes
        stored = {e["trace_id"] for e in events if e["kind"] == "store"}
        assert {e["trace_id"] for e in flushes} <= stored

    def test_exchange_round_markers_present(self, events):
        rounds = [e for e in events if e["kind"] == "exchange.round"]
        assert rounds
        assert all(r["bytes_sent"] > 0 for r in rounds)

    def test_single_and_sharded_sample_the_same_records(self, events):
        # The sampler is engine-independent: the set of sampled trace ids
        # (every record, at rate 1.0) matches the single-process engine's.
        tracing.deactivate()
        sim = Salad(_config(trace_sample_rate=1.0))
        try:
            sim.build(LEAVES)
            sim.insert_records(
                _records_for(sim.alive_identifiers(), random.Random(5))
            )
        finally:
            sim.shutdown()
        single_events = tracing.take_events()
        single_ids = {
            e["trace_id"] for e in single_events if e["kind"] == "insert"
        }
        sharded_ids = {e["trace_id"] for e in events if e["kind"] == "insert"}
        assert sharded_ids == single_ids
