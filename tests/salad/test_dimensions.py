"""SALADs at dimensionalities other than the default D=2.

The paper's machinery is parameterized over D (section 4.3: "Cells in a
SALAD are organized into a D-dimensional hypercube"); these integration
tests run whole SALADs at D=1 and D=3.
"""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


def build(dimensions, count=60, seed=31):
    salad = Salad(
        SaladConfig(target_redundancy=2.5, dimensions=dimensions, seed=seed)
    )
    salad.build(count)
    return salad


def insert_and_count_lost(salad, count, tag):
    rng = random.Random(tag)
    leaves = salad.alive_leaves()
    records, batches = [], {}
    for i in range(count):
        leaf = rng.choice(leaves)
        record = SaladRecord(
            synthetic_fingerprint(2048 + i, tag * 10_000_000 + i), leaf.identifier
        )
        records.append(record)
        batches.setdefault(leaf.identifier, []).append(record)
    salad.insert_records(batches)
    stored = set()
    for leaf in leaves:
        for record in leaf.database.records():
            stored.add((record.fingerprint, record.location))
    return sum(1 for r in records if (r.fingerprint, r.location) not in stored)


class TestOneDimension:
    def test_most_leaves_know_almost_everyone(self):
        """D=1: a single vector -- the leaf table is the whole system.

        Join lossiness (a join whose single random up-hop finds no target
        dies, per Fig. 5) leaves occasional stragglers with small tables, so
        the claim holds for the median, not the minimum.
        """
        salad = build(dimensions=1)
        sizes = sorted(salad.leaf_table_sizes())
        median = sizes[len(sizes) // 2]
        assert median >= 0.85 * (len(salad) - 1)
        assert sum(sizes) / len(sizes) >= 0.7 * (len(salad) - 1)

    def test_single_hop_delivery_rarely_loses(self):
        salad = build(dimensions=1)
        lost = insert_and_count_lost(salad, 300, tag=1)
        assert lost / 300 < 0.10

    def test_duplicates_matched(self):
        salad = build(dimensions=1)
        holders = salad.alive_leaves()[:3]
        fp = synthetic_fingerprint(99_000, 123)
        salad.insert_records(
            {h.identifier: [SaladRecord(fp, h.identifier)] for h in holders}
        )
        assert any(
            p.fingerprint == fp for _, p in salad.collected_matches()
        )


class TestThreeDimensions:
    def test_builds_and_matches(self):
        salad = build(dimensions=3, count=80)
        holders = salad.alive_leaves()[:4]
        fp = synthetic_fingerprint(88_000, 456)
        salad.insert_records(
            {h.identifier: [SaladRecord(fp, h.identifier)] for h in holders}
        )
        matched = {
            m for m, p in salad.collected_matches() if p.fingerprint == fp
        }
        assert len(matched & {h.identifier for h in holders}) >= 2

    def test_smaller_tables_than_d2(self):
        d2 = build(dimensions=2, count=80, seed=33)
        d3 = build(dimensions=3, count=80, seed=33)
        mean2 = sum(d2.leaf_table_sizes()) / 80
        mean3 = sum(d3.leaf_table_sizes()) / 80
        assert mean3 < mean2 * 1.1

    def test_loss_within_model_band(self):
        from repro.salad.model import loss_probability

        salad = build(dimensions=3, count=80, seed=34)
        lost = insert_and_count_lost(salad, 400, tag=3)
        predicted = loss_probability(2.5, 3, 80)
        assert lost / 400 < max(3 * predicted, 0.3)
