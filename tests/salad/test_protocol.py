"""The SALAD wire-protocol vocabulary."""

from repro.salad import protocol
from repro.salad.protocol import ALL_KINDS, JoinPayload, MatchPayload
from repro.core.fingerprint import synthetic_fingerprint


class TestVocabulary:
    def test_all_kinds_enumerated(self):
        assert set(ALL_KINDS) == {
            "record",
            "record_batch",
            "join",
            "welcome",
            "welcome_ack",
            "leaf_request",
            "leaf_response",
            "departure",
            "refresh",
            "match",
        }

    def test_kinds_are_distinct(self):
        assert len(set(ALL_KINDS)) == len(ALL_KINDS)

    def test_leaf_handles_every_kind(self):
        """Every protocol kind must have a registered handler on a leaf."""
        from repro.salad.leaf import SaladLeaf
        from repro.sim.events import EventScheduler
        from repro.sim.network import Network

        leaf = SaladLeaf(1, Network(EventScheduler()))
        for kind in ALL_KINDS:
            assert kind in leaf._handlers, kind


class TestPayloads:
    def test_join_payload_is_hashable(self):
        a = JoinPayload(sender=1, new_leaf=2)
        b = JoinPayload(sender=1, new_leaf=2)
        assert a == b and hash(a) == hash(b)

    def test_match_payload_carries_fingerprint(self):
        fp = synthetic_fingerprint(100, 1)
        payload = MatchPayload(fingerprint=fp, other_machine=9)
        assert payload.fingerprint.size == 100
        assert payload.other_machine == 9
