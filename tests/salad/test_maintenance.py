"""Periodic refresh maintenance (section 4.5)."""

import pytest

from repro.salad.maintenance import RefreshDriver
from repro.salad.salad import Salad, SaladConfig


def build_salad(count=40, seed=41):
    salad = Salad(SaladConfig(target_redundancy=2.5, seed=seed))
    salad.build(count)
    return salad


class TestConfiguration:
    def test_invalid_period(self):
        with pytest.raises(ValueError):
            RefreshDriver(build_salad(5), period=0)

    def test_timeout_must_exceed_period(self):
        with pytest.raises(ValueError):
            RefreshDriver(build_salad(5), period=10, timeout=5)

    def test_start_is_idempotent(self):
        driver = RefreshDriver(build_salad(10), period=5)
        driver.start()
        driver.start()
        driver.stop()


class TestSteadyState:
    def test_healthy_salad_flushes_only_asymmetric_entries(self):
        """With every machine alive, the only entries that age out are the
        one-way ones (A knows B but B's width says A is not vector-aligned,
        so B never refreshes A).  Those are a small minority; mutual entries
        must all survive."""
        salad = build_salad()
        total_entries = sum(leaf.table_size for leaf in salad.alive_leaves())
        mutual = {
            (leaf.identifier, other)
            for leaf in salad.alive_leaves()
            for other in leaf.leaf_table
            if salad.leaves[other].knows(leaf.identifier)
        }
        driver = RefreshDriver(salad, period=5.0)
        stats = driver.run_rounds(4)
        assert stats.rounds == 4
        assert stats.refreshes_sent > 0
        assert stats.entries_flushed < 0.15 * total_entries
        for leaf_id, other in mutual:
            assert salad.leaves[leaf_id].knows(other)

    def test_refreshes_touch_every_table_entry(self):
        salad = build_salad(count=20)
        table_entries = sum(leaf.table_size for leaf in salad.alive_leaves())
        driver = RefreshDriver(salad, period=5.0)
        stats = driver.run_rounds(1)
        assert stats.refreshes_sent == table_entries


class TestCrashDetection:
    def test_crashed_leaf_ages_out_everywhere(self):
        salad = build_salad()
        victim = salad.alive_leaves()[0]
        victim_id = victim.identifier
        knowers = [l for l in salad.alive_leaves() if l.knows(victim_id)]
        assert knowers
        victim.fail()
        driver = RefreshDriver(salad, period=5.0, timeout=12.0)
        driver.run_rounds(5)
        for leaf in salad.alive_leaves():
            assert not leaf.knows(victim_id)

    def test_flush_count_matches_departures(self):
        salad = build_salad()
        victims = salad.alive_leaves()[:3]
        stale_entries = sum(
            1
            for leaf in salad.alive_leaves()
            for v in victims
            if leaf is not v and leaf.knows(v.identifier)
        )
        for v in victims:
            v.fail()
        driver = RefreshDriver(salad, period=5.0, timeout=12.0)
        stats = driver.run_rounds(5)
        assert stats.entries_flushed >= stale_entries

    def test_recovered_leaf_is_relearned(self):
        salad = build_salad()
        victim = salad.alive_leaves()[0]
        victim_id = victim.identifier
        victim.fail()
        driver = RefreshDriver(salad, period=5.0, timeout=12.0)
        driver.run_rounds(5)
        assert not any(l.knows(victim_id) for l in salad.alive_leaves() if l is not victim)
        victim.recover()
        # The recovered leaf still has its own table; its next refresh round
        # re-introduces it to vector-aligned peers.
        driver2 = RefreshDriver(salad, period=5.0, timeout=1000.0)
        driver2.run_rounds(2)
        relearned = sum(
            1
            for leaf in salad.alive_leaves()
            if leaf is not victim and leaf.knows(victim_id)
        )
        assert relearned > 0
