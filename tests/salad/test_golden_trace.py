"""Golden-trace equivalence of the optimized and reference execution paths.

The PR's claim is that three optimizations -- indexed next-hop routing in
the leaf, the calendar-queue scheduler, and per-timestep message batching in
the network -- are *observably identical* to the seed's implementations, not
merely statistically similar.  These tests pin that down at the strongest
level available: the full ordered message trace (time, sender, recipient,
kind, payload) and the per-machine traffic counters of a seeded
build-then-insert workload must match message-for-message across every
combination of optimized and reference components.
"""

import random

import pytest

from repro.core.fingerprint import Fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.sim.events import EventScheduler, ReferenceEventScheduler
from repro.sim.network import Network
from repro.sim.tracer import NetworkTracer

LEAVES = 40
RECORDS_PER_LEAF = 15
CONTENT_POOL = 120  # small pool => plenty of duplicate groups => MATCH traffic


def _run_workload(sched_cls, batch_delivery, reference_routing, churn=False):
    """One seeded build + insert (+ optional churn); returns (trace, counters)."""
    config = SaladConfig(
        dimensions=2, seed=11, reference_routing=reference_routing
    )
    network = Network(
        scheduler=sched_cls(),
        latency=config.latency,
        rng=random.Random(123),
        batch_delivery=batch_delivery,
    )
    salad = Salad(config, network=network)
    tracer = NetworkTracer(network)

    salad.build(LEAVES)

    record_rng = random.Random(5)
    by_leaf = {}
    for leaf in salad.alive_leaves():
        records = []
        for _ in range(RECORDS_PER_LEAF):
            content = record_rng.randrange(CONTENT_POOL)
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            records.append(
                SaladRecord(fingerprint=fingerprint, location=leaf.identifier)
            )
        by_leaf[leaf.identifier] = records
    salad.insert_records(by_leaf)

    if churn:
        # Departures shrink tables and can trigger width recalculation --
        # exactly the events that must invalidate the next-hop cache.  A
        # second insert wave then routes through the post-churn topology.
        leaving = sorted(leaf.identifier for leaf in salad.alive_leaves())[::4]
        for identifier in leaving:
            salad.leaves[identifier].depart_cleanly()
        network.run()
        second_rng = random.Random(17)
        second = {}
        for leaf in salad.alive_leaves():
            content = second_rng.randrange(CONTENT_POOL)
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            second[leaf.identifier] = [
                SaladRecord(fingerprint=fingerprint, location=leaf.identifier)
            ]
        salad.insert_records(second)

    trace = [
        (m.time, m.sender, m.recipient, m.kind, m.payload) for m in tracer.messages
    ]
    counters = sorted(
        (identifier, t.sent, t.received, t.dropped_to)
        for identifier, t in network.traffic.items()
    )
    return trace, counters


class TestRoutingGoldenTrace:
    def test_indexed_routing_matches_reference_trace(self):
        reference = _run_workload(EventScheduler, True, reference_routing=True)
        indexed = _run_workload(EventScheduler, True, reference_routing=False)
        assert indexed[0] == reference[0]  # ordered message-for-message
        assert indexed[1] == reference[1]  # per-machine traffic counters

    def test_indexed_routing_matches_reference_under_churn(self):
        reference = _run_workload(
            EventScheduler, True, reference_routing=True, churn=True
        )
        indexed = _run_workload(
            EventScheduler, True, reference_routing=False, churn=True
        )
        assert indexed[0] == reference[0]
        assert indexed[1] == reference[1]


class TestEngineGoldenTrace:
    def test_calendar_batched_matches_heap_unbatched(self):
        # The seed configuration: heap scheduler, one event per message.
        seed_style = _run_workload(
            ReferenceEventScheduler, False, reference_routing=False
        )
        optimized = _run_workload(EventScheduler, True, reference_routing=False)
        assert optimized[0] == seed_style[0]
        assert optimized[1] == seed_style[1]

    @pytest.mark.parametrize("sched_cls", [EventScheduler, ReferenceEventScheduler])
    @pytest.mark.parametrize("batch", [True, False])
    def test_all_engine_combinations_agree(self, sched_cls, batch):
        baseline = _run_workload(EventScheduler, True, reference_routing=False)
        variant = _run_workload(sched_cls, batch, reference_routing=False)
        assert variant[0] == baseline[0]
        assert variant[1] == baseline[1]


class TestFullCrossProduct:
    def test_everything_reference_matches_everything_optimized(self):
        all_reference = _run_workload(
            ReferenceEventScheduler, False, reference_routing=True, churn=True
        )
        all_optimized = _run_workload(
            EventScheduler, True, reference_routing=False, churn=True
        )
        assert all_optimized[0] == all_reference[0]
        assert all_optimized[1] == all_reference[1]
