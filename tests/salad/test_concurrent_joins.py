"""Concurrent joins: the protocol degrades to lossiness, never to malfunction.

The paper grows its SALADs by strictly incremental joins ("the remaining
584 machines were each added to the SALAD by the procedure outlined in
Subsection 4.4").  These tests characterize what happens when joins overlap:

- *wave concurrency* (batches join simultaneously, network settles between
  waves) converges to a working SALAD with reduced table coverage;
- *fully concurrent cold start* (every machine joins an empty system at
  once) cannot bootstrap -- there is no extant topology for join messages
  to route through -- which is why real deployments (and the paper) seed
  the system incrementally.

Either way the result is a functional, routable SALAD: lossiness, not
breakage.
"""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.model import expected_leaf_table_size
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


def duplicate_discovery_rate(salad, groups=30, copies=4, seed=1):
    """Fraction of duplicate groups discovered end to end."""
    rng = random.Random(seed)
    leaves = salad.alive_leaves()
    batches = {}
    fingerprints = []
    for g in range(groups):
        fingerprint = synthetic_fingerprint(70_000 + g, 400_000 + g)
        fingerprints.append(fingerprint)
        for leaf in rng.sample(leaves, copies):
            batches.setdefault(leaf.identifier, []).append(
                SaladRecord(fingerprint, leaf.identifier)
            )
    salad.insert_records(batches)
    found = {p.fingerprint for _, p in salad.collected_matches()}
    return sum(1 for fp in fingerprints if fp in found) / groups


class TestWaveConcurrency:
    @pytest.fixture(scope="class")
    def wave_salad(self):
        salad = Salad(SaladConfig(target_redundancy=2.5, seed=91))
        for target in range(10, 151, 10):
            salad.build(target, settle_each=False)  # 10 joins in flight
        return salad

    def test_converges_to_working_topology(self, wave_salad):
        sizes = wave_salad.leaf_table_sizes()
        mean = sum(sizes) / len(sizes)
        expected = expected_leaf_table_size(150, 2.5, 2)
        # Coverage is degraded relative to serial joins but far from empty.
        assert mean > 0.3 * expected

    def test_duplicates_still_discovered(self, wave_salad):
        assert duplicate_discovery_rate(wave_salad) > 0.5

    def test_widths_spread_but_track_target(self, wave_salad):
        from repro.salad.ids import cell_id_width

        target = cell_id_width(150, 2.5)
        widths = wave_salad.width_distribution()
        near = sum(c for w, c in widths.items() if abs(w - target) <= 1)
        assert near / 150 > 0.5


class TestColdStart:
    def test_simultaneous_cold_start_cannot_bootstrap(self):
        """All-at-once cold start leaves everyone nearly blind: there is no
        extant topology to route joins through.  Deployments must seed
        incrementally (as the paper does)."""
        salad = Salad(SaladConfig(target_redundancy=2.5, seed=92))
        salad.build(100, settle_each=False)
        sizes = salad.leaf_table_sizes()
        assert sum(sizes) / len(sizes) < 5

    def test_cold_start_recovers_with_subsequent_serial_joins(self):
        """A botched cold start is repaired as later joins arrive serially:
        their join floods re-introduce the early leaves to each other."""
        salad = Salad(SaladConfig(target_redundancy=2.5, seed=93))
        salad.build(40, settle_each=False)  # blind cold start
        blind = sum(salad.leaf_table_sizes()) / 40
        salad.build(120, settle_each=True)  # serial growth afterwards
        sizes = salad.leaf_table_sizes()
        assert sum(sizes) / len(sizes) > blind * 3
        assert duplicate_discovery_rate(salad, seed=2) > 0.5
