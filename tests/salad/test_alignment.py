"""Alignment predicates (Eqs. 11, 12, 15) against the Fig. 3 example."""

import pytest

from repro.salad.alignment import (
    cell_aligned,
    d_vector_aligned,
    delta_dimensionally_aligned,
    lowest_alignment,
    mismatching_dimensions,
    vector_aligned,
)
from repro.salad.ids import compose_cell_id

# Fig. 3 uses W=4, D=2: cell-IDs wxyz with c0 = xz, c1 = wy.
W, D = 4, 2


def leaf(c0: int, c1: int) -> int:
    """Build an identifier with the given Fig. 3 coordinates."""
    return compose_cell_id([c0, c1], W, D)


# The black leaf has cell-ID 0110 -> c0 = 10b, c1 = 01b.
BLACK = leaf(0b10, 0b01)


class TestFig3Example:
    def test_leaf_a_shares_black_cell(self):
        a = leaf(0b10, 0b01)
        assert cell_aligned(BLACK, a, W)
        assert lowest_alignment(BLACK, a, W, D) == 0

    def test_horizontal_vector(self):
        """Leaves with c0 matching (cell-ID w1y0) are 1-vector-aligned."""
        b = leaf(0b10, 0b11)
        assert d_vector_aligned(BLACK, b, W, D, 1)
        assert vector_aligned(BLACK, b, W, D)
        assert not cell_aligned(BLACK, b, W)

    def test_vertical_vector(self):
        c = leaf(0b01, 0b01)
        assert d_vector_aligned(BLACK, c, W, D, 0)
        assert vector_aligned(BLACK, c, W, D)

    def test_unaligned_leaf(self):
        e = leaf(0b01, 0b10)
        assert not vector_aligned(BLACK, e, W, D)
        assert lowest_alignment(BLACK, e, W, D) == 2
        assert delta_dimensionally_aligned(BLACK, e, W, D, 2)

    def test_paper_cde_alignments(self):
        """Fig. 3 caption: C and D are 0-dimensionally aligned, C and E are
        1-dimensionally aligned, B and E are 2-dimensionally aligned."""
        c = leaf(0b01, 0b10)
        d = leaf(0b01, 0b10)  # same cell as C
        e = leaf(0b11, 0b10)  # same c1 as C, different c0
        b = leaf(0b10, 0b11)
        assert lowest_alignment(c, d, W, D) == 0
        assert lowest_alignment(c, e, W, D) == 1
        assert lowest_alignment(b, e, W, D) == 2


class TestPredicateProperties:
    def test_symmetry(self):
        i, j = 0b1011, 0b0110
        assert vector_aligned(i, j, W, D) == vector_aligned(j, i, W, D)
        assert mismatching_dimensions(i, j, W, D) == mismatching_dimensions(j, i, W, D)

    def test_reflexive(self):
        assert cell_aligned(BLACK, BLACK, W)
        assert vector_aligned(BLACK, BLACK, W, D)

    def test_cell_alignment_implies_vector_alignment(self):
        a = leaf(0b10, 0b01)
        assert cell_aligned(BLACK, a, W)
        assert vector_aligned(BLACK, a, W, D)

    def test_delta_alignment_is_monotone_in_delta(self):
        e = leaf(0b01, 0b10)
        assert not delta_dimensionally_aligned(BLACK, e, W, D, 1)
        assert delta_dimensionally_aligned(BLACK, e, W, D, 2)

    def test_width_zero_aligns_everything(self):
        assert cell_aligned(12345, 67890, 0)
        assert vector_aligned(12345, 67890, 0, 2)

    def test_smaller_width_preserves_alignment(self):
        """Folding (decreasing W) can only merge coordinates, never split."""
        for i, j in [(0b1011, 0b0011), (0b1111, 0b0101), (0xABC, 0xDEF)]:
            for width in range(12, 0, -1):
                if vector_aligned(i, j, width, 2):
                    assert vector_aligned(i, j, width - 1, 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            d_vector_aligned(1, 2, W, D, 5)
        with pytest.raises(ValueError):
            delta_dimensionally_aligned(1, 2, W, D, -1)
