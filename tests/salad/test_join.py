"""The join protocol (Fig. 5) and SALAD growth (section 4.4)."""

import pytest

from repro.salad.alignment import vector_aligned
from repro.salad.salad import Salad, SaladConfig


class TestSingleton:
    def test_first_leaf_starts_alone(self):
        salad = Salad(SaladConfig(seed=1))
        leaf = salad.add_leaf()
        assert leaf.table_size == 0
        assert leaf.width == 0

    def test_second_leaf_meets_first(self):
        salad = Salad(SaladConfig(seed=2))
        first = salad.add_leaf()
        second = salad.add_leaf()
        assert first.knows(second.identifier)
        assert second.knows(first.identifier)


class TestGrowth:
    @pytest.fixture(scope="class")
    def grown(self):
        salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=3))
        salad.build(80)
        return salad

    def test_all_leaves_joined(self, grown):
        assert len(grown) == 80

    def test_tables_contain_only_vector_aligned_leaves(self, grown):
        """A leaf's table must contain only leaves vector-aligned under its
        own width -- the section 4.3 invariant."""
        for leaf in grown.alive_leaves():
            for other in leaf.leaf_table:
                assert vector_aligned(
                    leaf.identifier, other, leaf.width, leaf.dimensions
                )

    def test_knowledge_is_mostly_symmetric(self, grown):
        """Welcome/welcome-ack make pairs learn of each other; width
        disagreement may break a few pairs, not the bulk."""
        asymmetric = 0
        total = 0
        for leaf in grown.alive_leaves():
            for other_id in leaf.leaf_table:
                other = grown.leaves[other_id]
                total += 1
                if not other.knows(leaf.identifier):
                    asymmetric += 1
        assert total > 0
        assert asymmetric / total < 0.2

    def test_mean_table_size_near_eq13(self, grown):
        from repro.salad.model import expected_leaf_table_size

        sizes = grown.leaf_table_sizes()
        mean = sum(sizes) / len(sizes)
        expected = expected_leaf_table_size(80, 2.5, 2)
        assert 0.5 * expected < mean < 1.6 * expected

    def test_widths_cluster_near_eq6(self, grown):
        from repro.salad.ids import cell_id_width

        target = cell_id_width(80, 2.5)
        widths = [leaf.width for leaf in grown.alive_leaves()]
        near = sum(1 for w in widths if abs(w - target) <= 1)
        assert near / len(widths) > 0.7

    def test_system_size_estimates_are_sane(self, grown):
        estimates = [leaf.estimated_system_size for leaf in grown.alive_leaves()]
        median = sorted(estimates)[len(estimates) // 2]
        assert 40 < median < 160  # true size 80


class TestJoinTraffic:
    def test_flood_suppression_bounds_messages(self):
        """Each join must cost O(sqrt(L)) messages, not a broadcast storm."""
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=5))
        salad.build(60)
        before = salad.network.messages_sent
        salad.add_leaf()
        cost = salad.network.messages_sent - before
        assert cost < 60 * 10  # far below anything storm-like

    def test_departed_leaf_forgotten(self):
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=6))
        salad.build(30)
        victim = salad.alive_leaves()[3]
        victim_id = victim.identifier
        knowers = [
            leaf for leaf in salad.alive_leaves() if leaf.knows(victim_id)
        ]
        assert knowers
        victim.depart_cleanly()
        salad.network.run()
        for leaf in salad.alive_leaves():
            assert not leaf.knows(victim_id)
