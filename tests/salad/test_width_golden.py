"""Golden identity of amortized width maintenance vs. the scan oracle.

The flagship insert path replaces the full leaf-table rescan at width-commit
time with an incrementally maintained two-bucket partition (survivor count +
dropped set, updated on every index add/remove).  The claim is *trace
identity*, not statistical equivalence: with ``reference_width=True`` a leaf
re-derives the dropped set by scanning (the seed behavior, counted by
``survivor_scans``); the default amortized path must produce bit-identical
stored records, duplicate matches, per-machine message totals, and telemetry
-- the only permitted difference is the ``salad.routing.survivor_scans``
counter itself (the whole point: it pins to zero).

``deferred_width_recalc`` is a different knob: it is NOT trace-identical to
the eager default (a joining newbie's width stays 0 through a welcome wave),
so it is compared engine-vs-engine only -- single-process deferred must
match sharded deferred exactly.
"""

import random

import pytest

from repro.core.fingerprint import Fingerprint
from repro.obs.registry import MetricsRegistry
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.sharded import ShardedSimulation

LEAVES = 24
RECORDS_PER_LEAF = 10
CONTENT_POOL = 60

#: Engine-mechanism namespaces (as in test_sharded_golden) plus the one
#: counter that legitimately differs between the amortized path and the
#: reference oracle.
EXCLUDED_PREFIXES = ("salad.sharded.", "sim.")
SCAN_COUNTER = "salad.routing.survivor_scans"


def _config(**overrides):
    base = dict(dimensions=2, seed=11, detailed_metrics=True)
    base.update(overrides)
    return SaladConfig(**base)


def _records_for(identifiers, rng, per_leaf=RECORDS_PER_LEAF):
    by_leaf = {}
    for identifier in identifiers:
        records = []
        for _ in range(per_leaf):
            content = rng.randrange(CONTENT_POOL)
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            records.append(SaladRecord(fingerprint=fingerprint, location=identifier))
        by_leaf[identifier] = records
    return by_leaf


def _drive(sim):
    """Growth, insert, clean departures, and a second insert wave.

    Departures shrink leaf tables, so the run commits width changes in both
    directions -- exactly the events whose dropped-set derivation differs
    between the amortized partition and the reference rescan.
    """
    try:
        sim.build(LEAVES)
        sim.insert_records(_records_for(sim.alive_identifiers(), random.Random(5)))
        for identifier in sorted(sim.alive_identifiers())[::4]:
            sim.depart_leaf(identifier, settle=False)
        sim.run()
        sim.insert_records(
            _records_for(sim.alive_identifiers(), random.Random(17), per_leaf=1)
        )
        registry = MetricsRegistry()
        sim.collect_metrics(registry)
        counters = registry.counter_totals()
        return {
            "stored_records": sim.stored_records(),
            "matches": sim.collected_matches(),
            "message_totals": sim.message_totals(),
            "leaf_tables": sim.leaf_table_sizes(),
            "widths": sim.width_distribution(),
            "counters": {
                name: value
                for name, value in counters.items()
                if not name.startswith(EXCLUDED_PREFIXES) and name != SCAN_COUNTER
            },
            "survivor_scans": counters.get(SCAN_COUNTER, 0),
            "width_changes": counters.get("salad.width.changes", 0),
        }
    finally:
        sim.shutdown()


@pytest.fixture(scope="module")
def amortized_single():
    return _drive(Salad(_config()))


@pytest.fixture(scope="module")
def reference_single():
    return _drive(Salad(_config(reference_width=True)))


def _assert_trace_identical(left, right):
    for key in (
        "stored_records",
        "matches",
        "message_totals",
        "leaf_tables",
        "widths",
        "counters",
    ):
        assert left[key] == right[key], f"width paths diverge on {key}"


class TestAmortizedWidthGolden:
    def test_amortized_matches_reference_single_process(
        self, amortized_single, reference_single
    ):
        _assert_trace_identical(amortized_single, reference_single)

    def test_amortized_path_never_scans(self, amortized_single, reference_single):
        # The workload commits width changes; the oracle scans once per
        # commit, the amortized path never does.
        assert amortized_single["width_changes"] > 0
        assert amortized_single["survivor_scans"] == 0
        assert reference_single["survivor_scans"] > 0
        assert (
            reference_single["survivor_scans"]
            <= reference_single["width_changes"]
        )

    @pytest.mark.parametrize("workers", [2])
    def test_amortized_matches_reference_sharded(self, workers, amortized_single):
        sharded_amortized = _drive(ShardedSimulation(_config(), workers=workers))
        sharded_reference = _drive(
            ShardedSimulation(_config(reference_width=True), workers=workers)
        )
        _assert_trace_identical(sharded_amortized, sharded_reference)
        # And both shard runs match the single-process trace.
        _assert_trace_identical(sharded_amortized, amortized_single)
        assert sharded_amortized["survivor_scans"] == 0
        assert sharded_reference["survivor_scans"] > 0


class TestDeferredRecalcGolden:
    """Deferral changes the trace (documented, opt-in) but must change it
    *identically* in both engines: coalesced recalcs run in the merged
    post-window order the sharded engine reproduces via its 2^63 root key."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_deferred_single_matches_deferred_sharded(self, workers):
        single = _drive(Salad(_config(deferred_width_recalc=True)))
        sharded = _drive(
            ShardedSimulation(_config(deferred_width_recalc=True), workers=workers)
        )
        _assert_trace_identical(single, sharded)
        assert single["survivor_scans"] == sharded["survivor_scans"] == 0

    def test_deferred_coalesces_recalcs(self):
        eager = _drive(Salad(_config()))
        deferred = _drive(Salad(_config(deferred_width_recalc=True)))
        # Coalescing is the optimization: strictly fewer recalc executions
        # over a join-storm workload, and an equally settled final cube
        # (every leaf converges to the same width distribution).
        assert (
            deferred["counters"]["salad.width.recalcs"]
            < eager["counters"]["salad.width.recalcs"]
        )
        assert deferred["widths"] == eager["widths"]
