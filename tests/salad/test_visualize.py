"""ASCII visualization of SALAD state."""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.visualize import cell_grid, leaf_view, load_histogram


@pytest.fixture(scope="module")
def salad():
    s = Salad(SaladConfig(target_redundancy=2.5, seed=61))
    s.build(60)
    rng = random.Random(1)
    leaves = s.alive_leaves()
    batches = {}
    for i in range(400):
        leaf = rng.choice(leaves)
        batches.setdefault(leaf.identifier, []).append(
            SaladRecord(synthetic_fingerprint(1000 + i, i), leaf.identifier)
        )
    s.insert_records(batches)
    return s


class TestCellGrid:
    def test_counts_sum_to_population(self, salad):
        grid = cell_grid(salad)
        numbers = [
            int(token)
            for line in grid.splitlines()[2:]
            for token in line.split()[1:]
        ]
        assert sum(numbers) == len(salad.alive_leaves())

    def test_grid_dimensions_match_width(self, salad):
        grid = cell_grid(salad, width=4)
        # 4 rows of cells plus 2 header lines.
        assert len(grid.splitlines()) == 2 + 4

    def test_rejects_non_2d(self):
        s = Salad(SaladConfig(dimensions=3, seed=62))
        s.build(8)
        with pytest.raises(ValueError):
            cell_grid(s)


class TestLeafView:
    def test_exactly_one_own_cell_marker(self, salad):
        view = leaf_view(salad, salad.alive_leaves()[0].identifier)
        assert view.count("#") == 1

    def test_vector_markers_form_cross(self, salad):
        view = leaf_view(salad, salad.alive_leaves()[0].identifier, width=4)
        rows = [line for line in view.splitlines()[1:-1]]
        assert sum(1 for row in rows if "#" in row or "-" in row) >= 1
        column_markers = sum(row.count("|") for row in rows)
        assert column_markers == 3  # 4-row grid: 3 cells above/below own

    def test_coverage_line_present(self, salad):
        view = leaf_view(salad, salad.alive_leaves()[0].identifier)
        assert "vector coverage" in view


class TestLoadHistogram:
    def test_bin_counts_sum_to_leaves(self, salad):
        histogram = load_histogram(salad)
        counts = [int(line.rsplit(" ", 1)[1]) for line in histogram.splitlines()[1:]]
        assert sum(counts) == len(salad.alive_leaves())

    def test_empty_salad(self):
        s = Salad(SaladConfig(seed=63))
        s.build(3)
        assert load_histogram(s) == "no records stored"
