"""Unit tests for the sub-cube sharded engine's plumbing.

Golden identity against the single-process engine lives in
``test_sharded_golden.py``; this file covers the pieces in isolation:
shard assignment, worker-count validation, the factory's degradation rules,
the shard network's buffering/routing, and coordinator lifecycle and error
propagation.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad import sharded as sharded_mod
from repro.salad.envelope_codec import decode_frame
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig, validate_shard_workers
from repro.salad.sharded import (
    ShardedSimulation,
    ShardLeafRef,
    ShardNetwork,
    ShardingUnavailable,
    ShardWorkerDied,
    make_salad,
    resolve_shard_workers,
    shard_of,
)
from repro.sim.events import EventScheduler
from repro.sim.network import Network


class TestShardOf:
    def test_low_bits_select_shard(self):
        assert shard_of(0b10110, 4) == 0b10
        assert shard_of(0b10110, 2) == 0
        assert shard_of(0b10111, 2) == 1

    def test_single_shard_owns_everything(self):
        assert shard_of(12345, 1) == 0


class TestWorkerValidation:
    def test_none_and_one_mean_single_process(self):
        assert resolve_shard_workers(None) == 1
        assert resolve_shard_workers(1) == 1

    def test_zero_resolves_to_a_power_of_two(self):
        resolved = resolve_shard_workers(0)
        assert resolved >= 1
        assert resolved & (resolved - 1) == 0

    def test_powers_of_two_accepted(self):
        assert resolve_shard_workers(2) == 2
        assert resolve_shard_workers(8) == 8

    def test_bool_rejected(self):
        # bool subclasses int, so True would otherwise resolve to 1 worker.
        with pytest.raises(TypeError):
            resolve_shard_workers(True)
        with pytest.raises(TypeError):
            validate_shard_workers(False)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            resolve_shard_workers(2.0)
        with pytest.raises(TypeError):
            resolve_shard_workers("4")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_shard_workers(-2)

    @pytest.mark.parametrize("bad", [3, 6, 12])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_shard_workers(bad)

    def test_config_validates_on_construction(self):
        with pytest.raises(ValueError):
            SaladConfig(shard_workers=3)
        with pytest.raises(TypeError):
            SaladConfig(shard_workers=True)


class TestMakeSalad:
    def test_default_is_single_process(self):
        assert isinstance(make_salad(SaladConfig(seed=1)), Salad)

    def test_explicit_network_forces_single_process(self):
        network = Network(EventScheduler())
        sim = make_salad(SaladConfig(seed=1, shard_workers=2), network=network)
        assert isinstance(sim, Salad)
        assert sim.network is network

    def test_workers_argument_overrides_config(self):
        sim = make_salad(SaladConfig(seed=1, shard_workers=2), workers=1)
        assert isinstance(sim, Salad)

    def test_sharded_when_requested_and_possible(self):
        sim = make_salad(SaladConfig(seed=1, shard_workers=2))
        try:
            # Environments that cannot start processes degrade to Salad;
            # both outcomes are valid, but never a crash.
            if isinstance(sim, ShardedSimulation):
                assert sim.shards == 2
        finally:
            sim.shutdown()

    def test_daemonic_parent_degrades(self, monkeypatch):
        monkeypatch.setattr(
            sharded_mod.multiprocessing,
            "current_process",
            lambda: SimpleNamespace(daemon=True),
        )
        with pytest.raises(ShardingUnavailable):
            ShardedSimulation(SaladConfig(seed=1), workers=2)
        with pytest.warns(RuntimeWarning):
            assert isinstance(make_salad(SaladConfig(seed=1, shard_workers=2)), Salad)

    def test_degradation_warns_with_fallback_count(self, monkeypatch):
        monkeypatch.setattr(
            sharded_mod.multiprocessing,
            "current_process",
            lambda: SimpleNamespace(daemon=True),
        )
        with pytest.warns(RuntimeWarning, match="instead of 4 shard workers"):
            sim = make_salad(SaladConfig(seed=1, shard_workers=4))
        assert isinstance(sim, Salad)


class TestShardNetwork:
    def _net(self):
        return ShardNetwork(
            shard=0, shards=2, scheduler=EventScheduler(), latency=1.0, loss_seed="t"
        )

    def test_partition_unsupported(self):
        with pytest.raises(NotImplementedError):
            self._net().partition({"west": []})

    def test_send_routes_by_low_bits(self):
        net = self._net()
        net.send(0, 2, "kind", None)  # 2 & 1 == 0 -> stays local
        net.send(0, 3, "kind", None)  # 3 & 1 == 1 -> outbound to shard 1
        assert len(net._local_next) == 1
        assert net._outbound[1].count == 1
        assert net.pending_count() == 2
        frame, count = net.take_frame(1, window=1)
        assert count == 1
        decoded = decode_frame(frame)
        assert decoded.source_shard == 0
        assert decoded.window == 1
        assert not decoded.final
        # The unknown "kind" string takes the pickle fallback but survives
        # the round trip bit-for-bit.
        assert decoded.messages == [((0, 1), 0, 3, "kind", None)]
        assert net.pending_count() == 1  # the local message remains
        assert net.take_frame(1, window=1) == (None, 0)  # drained, non-final

    def test_final_frame_produced_even_when_empty(self):
        net = self._net()
        frame, count = net.take_frame(1, window=3, final=True)
        assert count == 0
        decoded = decode_frame(frame)
        assert decoded.final
        assert decoded.window == 3
        assert decoded.messages == []

    def test_root_keys_preserve_send_order(self):
        net = self._net()
        net.begin_root(7)
        net.send(0, 2, "a", None)
        net.send(0, 2, "b", None)
        assert [key for key, _ in net._local_next] == [(7, 0), (7, 1)]

    def test_total_loss_buffers_nothing(self):
        net = self._net()
        net.loss_probability = 1.0
        net.send(0, 2, "kind", None)
        assert net.pending_count() == 0
        assert net.messages_dropped == 1
        assert net.traffic[0].dropped_to == 1


class TestLifecycle:
    def test_context_manager_tears_down_workers(self):
        with ShardedSimulation(SaladConfig(seed=2), workers=2) as sim:
            sim.build(4)
            procs = list(sim._procs)
            assert len(sim) == 4
        assert sim._procs == []
        assert all(not proc.is_alive() for proc in procs)

    def test_close_is_idempotent(self):
        sim = ShardedSimulation(SaladConfig(seed=2), workers=2)
        sim.close()
        sim.close()

    def test_worker_error_propagates(self):
        sim = ShardedSimulation(SaladConfig(seed=5), workers=2)
        try:
            with pytest.raises(RuntimeError):
                sim._request(0, ("bogus",))
        finally:
            sim.close()

    def test_dead_worker_raises_shard_worker_died(self):
        # A worker killed mid-run (OOM killer, crash) must surface as a
        # precise error naming the dead shard, never a hung barrier.
        sim = ShardedSimulation(SaladConfig(seed=6), workers=2)
        try:
            sim.build(4)
            sim._procs[0].kill()
            sim._procs[0].join(timeout=10)
            with pytest.raises(ShardWorkerDied) as excinfo:
                sim.build(10)
            assert excinfo.value.shard == 0
            assert "shard 0" in str(excinfo.value)
        finally:
            sim.close()

    def test_shard_worker_died_is_a_runtime_error(self):
        # Callers that guarded the old "worker died unexpectedly"
        # RuntimeError keep working.
        assert issubclass(ShardWorkerDied, RuntimeError)
        err = ShardWorkerDied(3, 17.0)
        assert err.shard == 3
        assert err.window == 17.0


class TestDriverApi:
    def test_add_leaf_returns_owning_shard_ref(self):
        with ShardedSimulation(SaladConfig(seed=3), workers=2) as sim:
            ref = sim.add_leaf()
            assert isinstance(ref, ShardLeafRef)
            assert ref.shard == ref.identifier & 1

    def test_duplicate_identifier_rejected(self):
        with ShardedSimulation(SaladConfig(seed=3), workers=2) as sim:
            ref = sim.add_leaf()
            with pytest.raises(ValueError):
                sim.add_leaf(identifier=ref.identifier)

    def test_unknown_leaf_operations_raise(self):
        with ShardedSimulation(SaladConfig(seed=3), workers=2) as sim:
            sim.build(2)
            with pytest.raises(KeyError):
                sim.depart_leaf(1234)
            with pytest.raises(KeyError):
                sim.insert_records({1234: []})

    def test_invalid_loss_and_crash_arguments(self):
        with ShardedSimulation(SaladConfig(seed=3), workers=2) as sim:
            with pytest.raises(ValueError):
                sim.set_loss_probability(1.5)
            with pytest.raises(ValueError):
                sim.crash_fraction(-0.1, random.Random(1))

    def test_total_loss_drops_all_insert_traffic(self):
        with ShardedSimulation(SaladConfig(seed=4), workers=2) as sim:
            sim.build(6)
            sent0, delivered0, dropped0 = sim.message_counters()
            sim.set_loss_probability(1.0)
            target = sim.alive_identifiers()[0]
            record = SaladRecord(synthetic_fingerprint(10_000, 1), target)
            sim.insert_records({target: [record]})
            sent1, delivered1, dropped1 = sim.message_counters()
            assert sent1 > sent0
            assert delivered1 == delivered0
            assert dropped1 - dropped0 == sent1 - sent0
