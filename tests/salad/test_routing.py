"""Record insertion and multi-hop routing (Fig. 4) on a real SALAD."""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.ids import cell_id
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


@pytest.fixture(scope="module")
def salad():
    s = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=17))
    s.build(100)
    return s


def insert_unique_records(salad, count, tag):
    rng = random.Random(tag)
    leaves = salad.alive_leaves()
    records = []
    batches = {}
    for i in range(count):
        leaf = rng.choice(leaves)
        record = SaladRecord(synthetic_fingerprint(1000 + i, tag * 1_000_000 + i), leaf.identifier)
        records.append(record)
        batches.setdefault(leaf.identifier, []).append(record)
    salad.insert_records(batches)
    return records


class TestDelivery:
    def test_records_stored_on_cell_aligned_leaves_only(self, salad):
        records = insert_unique_records(salad, 150, tag=1)
        for leaf in salad.alive_leaves():
            for record in leaf.database.records():
                assert cell_id(record.routing_id, leaf.width) == cell_id(
                    leaf.identifier, leaf.width
                )

    def test_most_records_stored_redundantly(self, salad):
        records = insert_unique_records(salad, 150, tag=2)
        copies = []
        for record in records:
            stored_on = sum(
                1
                for leaf in salad.alive_leaves()
                if record.location in leaf.database.locations(record.fingerprint)
            )
            copies.append(stored_on)
        mean_copies = sum(copies) / len(copies)
        assert mean_copies > 1.5  # redundancy close to lambda

    def test_loss_rate_within_model_band(self, salad):
        """Eq. 14 predicts the loss; measured loss should be comparable."""
        from repro.salad.model import loss_probability

        records = insert_unique_records(salad, 300, tag=3)
        lost = 0
        for record in records:
            if not any(
                record.location in leaf.database.locations(record.fingerprint)
                for leaf in salad.alive_leaves()
            ):
                lost += 1
        predicted = loss_probability(2.5, 2, 100)
        assert lost / len(records) < max(3 * predicted, 0.25)


class TestMatching:
    def test_duplicates_are_notified(self, salad):
        leaves = salad.alive_leaves()[:4]
        fingerprint = synthetic_fingerprint(77_000, 999_999)
        salad.insert_records(
            {leaf.identifier: [SaladRecord(fingerprint, leaf.identifier)] for leaf in leaves}
        )
        notified = {
            machine
            for machine, payload in salad.collected_matches()
            if payload.fingerprint == fingerprint
        }
        holders = {leaf.identifier for leaf in leaves}
        assert len(notified & holders) >= 2  # most holders learn of the others

    def test_unique_content_never_notified(self, salad):
        fingerprint = synthetic_fingerprint(88_000, 888_888)
        holder = salad.alive_leaves()[5]
        salad.insert_records({holder.identifier: [SaladRecord(fingerprint, holder.identifier)]})
        assert not any(
            payload.fingerprint == fingerprint
            for _, payload in salad.collected_matches()
        )

    def test_no_self_match_notifications(self, salad):
        for machine, payload in salad.collected_matches():
            assert payload.other_machine != machine


class TestIdempotence:
    def test_reinsertion_is_harmless(self):
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=23))
        salad.build(30)
        leaf = salad.alive_leaves()[0]
        record = SaladRecord(synthetic_fingerprint(500, 1), leaf.identifier)
        salad.insert_records({leaf.identifier: [record]})
        before = salad.total_stored_records()
        matches_before = len(salad.collected_matches())
        salad.insert_records({leaf.identifier: [record]})
        assert salad.total_stored_records() == before
        assert len(salad.collected_matches()) == matches_before


class TestHopLimit:
    def test_forwarding_always_terminates(self):
        """Even with wildly disagreeing widths, records cannot cycle."""
        salad = Salad(SaladConfig(target_redundancy=2.0, seed=29))
        salad.build(40)
        # Sabotage width agreement to provoke disagreement-induced cycles.
        for i, leaf in enumerate(salad.alive_leaves()):
            leaf.width = max(0, leaf.width + (i % 5) - 2)
            leaf._rebuild_index()
        insert_unique_records(salad, 100, tag=31)  # must not hang
        assert salad.network.scheduler.events_executed < 2_000_000
