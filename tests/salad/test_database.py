"""The per-leaf record database and the Fig. 13 eviction policy."""

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.database import RecordDatabase
from repro.salad.records import SaladRecord


def rec(size: int, content: int, location: int = 1) -> SaladRecord:
    return SaladRecord(synthetic_fingerprint(size, content), location)


class TestBasicStorage:
    def test_insert_and_lookup(self):
        db = RecordDatabase()
        record = rec(100, 1, location=7)
        stored, matches = db.insert(record)
        assert stored and matches == []
        assert db.locations(record.fingerprint) == {7}
        assert len(db) == 1

    def test_matches_returned_for_same_fingerprint(self):
        db = RecordDatabase()
        db.insert(rec(100, 1, location=7))
        stored, matches = db.insert(rec(100, 1, location=8))
        assert stored
        assert [m.location for m in matches] == [7]

    def test_duplicate_record_not_stored_twice(self):
        db = RecordDatabase()
        db.insert(rec(100, 1, location=7))
        stored, matches = db.insert(rec(100, 1, location=7))
        assert not stored
        assert len(db) == 1

    def test_different_fingerprints_do_not_match(self):
        db = RecordDatabase()
        db.insert(rec(100, 1))
        stored, matches = db.insert(rec(100, 2))
        assert matches == []

    def test_records_iterates_all(self):
        db = RecordDatabase()
        db.insert(rec(100, 1, location=7))
        db.insert(rec(100, 1, location=8))
        db.insert(rec(200, 2, location=7))
        assert len(list(db.records())) == 3


class TestCapacityEviction:
    def test_evicts_lowest_fingerprint(self):
        """Fig. 13: "discards a record in the database with the lowest
        fingerprint value (corresponding to the smallest file)"."""
        db = RecordDatabase(capacity=2)
        small = rec(10, 1)
        mid = rec(100, 2)
        big = rec(1000, 3)
        db.insert(small)
        db.insert(mid)
        stored, _ = db.insert(big)
        assert stored
        assert small.fingerprint not in db
        assert mid.fingerprint in db and big.fingerprint in db
        assert db.evictions == 1

    def test_rejects_record_lower_than_everything_stored(self):
        """Fig. 13: "If no record in the database has a lower fingerprint
        value than the new record, the machine discards the new record"."""
        db = RecordDatabase(capacity=2)
        db.insert(rec(100, 1))
        db.insert(rec(1000, 2))
        tiny = rec(10, 3)
        stored, _ = db.insert(tiny)
        assert not stored
        assert tiny.fingerprint not in db
        assert db.rejections == 1
        assert len(db) == 2

    def test_rejected_record_still_reports_matches(self):
        db = RecordDatabase(capacity=1)
        db.insert(rec(1000, 1, location=7))
        stored, matches = db.insert(rec(1000, 1, location=8))
        # Same fingerprint as stored record; equal (not lower) sort keys of
        # other records mean the new one is discarded, but the match is
        # still visible for notification.
        assert [m.location for m in matches] == [7]

    def test_capacity_never_exceeded_under_churn(self):
        db = RecordDatabase(capacity=10)
        for i in range(200):
            db.insert(rec(size=(i * 37) % 500 + 1, content=i))
            assert len(db) <= 10

    def test_surviving_records_are_the_largest(self):
        db = RecordDatabase(capacity=5)
        sizes = [10, 500, 30, 400, 50, 300, 70, 200, 90, 100]
        for i, size in enumerate(sizes):
            db.insert(rec(size, i))
        kept = sorted(r.fingerprint.size for r in db.records())
        assert kept == sorted(sizes)[-5:]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecordDatabase(capacity=0)


class TestRemoveLocation:
    def test_removes_all_records_for_machine(self):
        db = RecordDatabase()
        db.insert(rec(100, 1, location=7))
        db.insert(rec(200, 2, location=7))
        db.insert(rec(100, 1, location=8))
        removed = db.remove_location(7)
        assert removed == 2
        assert db.locations(rec(100, 1).fingerprint) == {8}
        assert len(db) == 1

    def test_heap_consistent_after_removal(self):
        db = RecordDatabase(capacity=3)
        db.insert(rec(10, 1, location=7))
        db.insert(rec(20, 2, location=7))
        db.insert(rec(30, 3, location=8))
        db.remove_location(7)
        # Fill back up and force eviction; stale heap entries must be skipped
        # and the true lowest survivor (30) is the one evicted.
        db.insert(rec(40, 4))
        db.insert(rec(50, 5))
        stored, _ = db.insert(rec(60, 6))
        assert stored
        assert len(db) == 3
        assert rec(30, 3).fingerprint not in db
        assert rec(60, 6).fingerprint in db


class TestHeapCompaction:
    """Stale lazy-deleted heap entries must not accumulate without bound."""

    def test_heap_length_stays_pinned_under_churn(self):
        db = RecordDatabase(capacity=50)
        for round_ in range(200):
            for i in range(50):
                db.insert(rec(100 + i, round_ * 50 + i, location=1))
            db.remove_location(1)
        # 10k inserts and 200 full clears: without compaction the lazy heap
        # would hold every insertion ever made; with it, the heap can never
        # exceed the compaction threshold.
        assert len(db) == 0
        assert db.heap_compactions > 0
        assert len(db._heap) <= max(db._HEAP_COMPACT_FLOOR, 2 * len(db))

    def test_compaction_preserves_eviction_order(self):
        db = RecordDatabase(capacity=4)
        for i in range(8):
            db.insert(rec(10 + i, i, location=1))
        db.remove_location(1)  # empty the db, stranding stale heap entries
        db._maybe_compact_heap()
        for i in range(6):
            db.insert(rec(50 + i, 100 + i, location=2))
        assert [r.fingerprint.size for r in db.records()] == [52, 53, 54, 55]
