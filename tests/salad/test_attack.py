"""Attack identifier crafting (section 4.7)."""

import random

import pytest

from repro.salad.alignment import vector_aligned
from repro.salad.attack import (
    cell_population,
    craft_attack_identifiers,
    craft_vector_aligned_identifier,
    measure_record_redundancy,
)
from repro.salad.salad import Salad, SaladConfig

VICTIM = 0xDEADBEEFCAFE


class TestCrafting:
    def test_crafted_identifier_is_vector_aligned(self):
        rng = random.Random(1)
        for width in (2, 4, 8, 12):
            sybil = craft_vector_aligned_identifier(VICTIM, width, 2, rng)
            assert vector_aligned(VICTIM, sybil, width, 2)

    def test_axis_parameter_respected(self):
        rng = random.Random(2)
        from repro.salad.ids import coordinate

        sybil = craft_vector_aligned_identifier(VICTIM, 8, 2, rng, axis=1)
        assert coordinate(sybil, 8, 2, 0) == coordinate(VICTIM, 8, 2, 0)

    def test_batch_spreads_over_axes(self):
        rng = random.Random(3)
        sybils = craft_attack_identifiers(VICTIM, 8, 2, 10, rng)
        assert len(sybils) == 10
        for sybil in sybils:
            assert vector_aligned(VICTIM, sybil, 8, 2)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            craft_vector_aligned_identifier(VICTIM, 0, 2, random.Random(4))


class TestAttackEffect:
    def test_sybils_inflate_victim_table(self):
        salad = Salad(SaladConfig(target_redundancy=2.5, seed=9))
        salad.build(80)
        victim = salad.alive_leaves()[0]
        table_before = victim.table_size
        estimate_before = victim.estimated_system_size
        rng = random.Random(10)
        for identifier in craft_attack_identifiers(
            victim.identifier, victim.width, 2, 30, rng
        ):
            if identifier not in salad.leaves:
                salad.add_leaf(identifier=identifier)
        assert victim.table_size > table_before
        assert victim.estimated_system_size > estimate_before

    def test_measure_redundancy_empty(self):
        salad = Salad(SaladConfig(seed=11))
        salad.build(5)
        assert measure_record_redundancy(salad, []) == 0.0

    def test_cell_population_counts(self):
        salad = Salad(SaladConfig(seed=12))
        salad.build(20)
        total = sum(
            cell_population(salad, c, 2) for c in range(4)
        )
        # Each of the 4 width-2 cells counted once per member: sums to 20.
        assert total == 20
