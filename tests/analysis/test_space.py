"""Space accounting from match notifications."""

from repro.analysis.space import SpaceAccounting, UnionFind, reclaimed_bytes_from_matches
from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.protocol import MatchPayload
from repro.workload.corpus import Corpus, FileStat, MachineScan

FP_BIG = synthetic_fingerprint(1000, 1)
FP_SMALL = synthetic_fingerprint(10, 2)


def match(receiver, other, fingerprint):
    return (receiver, MatchPayload(fingerprint=fingerprint, other_machine=other))


class TestUnionFind:
    def test_components(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(10, 11)
        components = {frozenset(v) for v in uf.components().values()}
        assert components == {frozenset({1, 2, 3}), frozenset({10, 11})}

    def test_find_is_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.find("a") == uf.find("b")
        assert uf.find("a") == uf.find(uf.find("a"))

    def test_self_union_harmless(self):
        uf = UnionFind()
        uf.union(1, 1)
        assert len(uf.components()) == 1


class TestReclaimedBytes:
    def test_pair_reclaims_one_copy(self):
        matches = [match(1, 2, FP_BIG)]
        assert reclaimed_bytes_from_matches(matches) == 1000

    def test_transitive_chain_reclaims_all_but_one(self):
        matches = [match(1, 2, FP_BIG), match(2, 3, FP_BIG)]
        assert reclaimed_bytes_from_matches(matches) == 2000

    def test_duplicate_notifications_counted_once(self):
        matches = [match(1, 2, FP_BIG)] * 5 + [match(2, 1, FP_BIG)] * 5
        assert reclaimed_bytes_from_matches(matches) == 1000

    def test_disconnected_components_coalesce_separately(self):
        matches = [match(1, 2, FP_BIG), match(3, 4, FP_BIG)]
        assert reclaimed_bytes_from_matches(matches) == 2000  # 4 copies -> 2

    def test_min_size_threshold_filters(self):
        matches = [match(1, 2, FP_BIG), match(1, 2, FP_SMALL)]
        assert reclaimed_bytes_from_matches(matches, min_size=100) == 1000

    def test_different_fingerprints_never_merge(self):
        other = synthetic_fingerprint(1000, 99)
        matches = [match(1, 2, FP_BIG), match(2, 3, other)]
        assert reclaimed_bytes_from_matches(matches) == 2000

    def test_empty(self):
        assert reclaimed_bytes_from_matches([]) == 0


class TestSpaceAccounting:
    def make_corpus(self):
        shared = FileStat(content_id=1, size=1000)
        return Corpus(
            machines=[
                MachineScan(0, [shared, FileStat(2, 500)]),
                MachineScan(1, [shared]),
                MachineScan(2, [shared]),
            ]
        )

    def test_ideal_consumed(self):
        accounting = SpaceAccounting(self.make_corpus())
        assert accounting.total_bytes == 3500
        assert accounting.ideal_consumed_bytes() == 1500  # two copies reclaimed

    def test_consumed_with_partial_discovery(self):
        accounting = SpaceAccounting(self.make_corpus())
        fp = FileStat(1, 1000).fingerprint()
        matches = [match(0, 1, fp)]  # only one pair discovered
        assert accounting.consumed_bytes(matches) == 2500
        assert accounting.reclaimed_fraction(matches) == 1000 / 3500

    def test_full_discovery_reaches_ideal(self):
        accounting = SpaceAccounting(self.make_corpus())
        fp = FileStat(1, 1000).fingerprint()
        matches = [match(0, 1, fp), match(1, 2, fp)]
        assert accounting.consumed_bytes(matches) == accounting.ideal_consumed_bytes()
