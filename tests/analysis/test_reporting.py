"""Report rendering."""

import pytest

from repro.analysis.reporting import format_bytes, render_kv, render_table


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(512) == "512"

    def test_kilobytes(self):
        assert format_bytes(4096) == "4K"

    def test_fractional_megabytes(self):
        assert format_bytes(int(2.5 * 1024 * 1024)) == "2.5M"

    def test_gigabytes(self):
        assert format_bytes(685 * 2**30) == "685G"

    def test_fractional_gigabytes(self):
        assert format_bytes(int(1.5 * 2**30)) == "1.5G"


class TestRenderTable:
    def test_contains_headers_and_values(self):
        out = render_table(
            "Title",
            "x",
            [1, 2],
            {"s1": [10, 20], "s2": [30, 40]},
        )
        assert "Title" in out
        assert "s1" in out and "s2" in out
        assert "30" in out and "40" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", "x", [1, 2], {"s": [1]})

    def test_columns_align(self):
        out = render_table("t", "x", [1], {"col": [123456]})
        lines = out.splitlines()
        # header, separator, one row, all equal width
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestRenderKv:
    def test_keys_and_values_present(self):
        out = render_kv("Block", {"alpha": 1, "much_longer_key": "v"})
        assert "Block" in out
        assert "alpha" in out and "much_longer_key" in out
        assert " : " in out
