"""CDF helpers for the distribution figures."""

from repro.analysis.cdf import Cdf, cdf_series, sampled_cdf_points


class TestCdfSeries:
    def test_one_cdf_per_label(self):
        series = cdf_series({"a": [1, 2, 3], "b": [4, 5]})
        assert set(series) == {"a", "b"}
        assert len(series["a"]) == 3


class TestSampledPoints:
    def test_count_and_monotonicity(self):
        cdf = Cdf.from_samples(range(100))
        points = sampled_cdf_points(cdf, points=10)
        assert len(points) == 10
        values = [v for v, _ in points]
        assert values == sorted(values)
        assert points[-1][1] == 1.0

    def test_empty(self):
        assert sampled_cdf_points(Cdf.from_samples([])) == []
