#!/usr/bin/env python
"""Visualize a live SALAD: the Fig. 1 / Fig. 3 pictures, rendered in ASCII.

Builds a SALAD, inserts records, and draws:

1. the hypercube cell grid with each cell's leaf population;
2. one leaf's-eye view (its cell, its two vectors, its table coverage);
3. a histogram of per-leaf record loads.

Run:  python examples/salad_map.py [--leaves N]
"""

import argparse
import random

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.visualize import cell_grid, leaf_view, load_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--leaves", type=int, default=120)
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--redundancy", type=float, default=2.5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    salad = Salad(SaladConfig(target_redundancy=args.redundancy, seed=args.seed))
    salad.build(args.leaves)

    rng = random.Random(args.seed)
    leaves = salad.alive_leaves()
    batches = {}
    for i in range(args.records):
        leaf = rng.choice(leaves)
        record = SaladRecord(synthetic_fingerprint(4096 + i, i), leaf.identifier)
        batches.setdefault(leaf.identifier, []).append(record)
    salad.insert_records(batches)

    print(cell_grid(salad))
    print()
    print(leaf_view(salad, leaves[0].identifier))
    print()
    print(load_histogram(salad))


if __name__ == "__main__":
    main()
