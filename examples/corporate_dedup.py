#!/usr/bin/env python
"""Corporate-network deduplication: the paper's headline scenario.

Simulates a corporate network of desktop machines (the paper's intro: shared
documents among workgroups, multiple users' copies of common application
programs), runs the full DFC pipeline, and reports how much disk space the
system reclaims -- through the lossy SALAD, compared with an omniscient
deduplicator.

Run:  python examples/corporate_dedup.py [--machines N] [--files F]
      python examples/corporate_dedup.py --scan /some/dir   (real data)
"""

import argparse
import time

from repro.analysis.reporting import format_bytes
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.workload import Corpus, CorpusSpec, generate_corpus


def build_corpus(args: argparse.Namespace) -> Corpus:
    if args.scan:
        from repro.workload.scanner import scan_directory

        print(f"scanning {args.scan} (pretending each top-level entry is ~a machine)...")
        scan = scan_directory(args.scan, max_files=args.machines * args.files)
        # Split one real scan into per-"machine" slices for the simulation.
        per_machine = max(1, len(scan.files) // args.machines)
        from repro.workload.corpus import MachineScan

        machines = [
            MachineScan(machine_index=i, files=scan.files[i * per_machine : (i + 1) * per_machine])
            for i in range(args.machines)
        ]
        return Corpus(machines=[m for m in machines if m.files])
    spec = CorpusSpec(machines=args.machines, mean_files_per_machine=args.files)
    return generate_corpus(spec, seed=args.seed)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machines", type=int, default=150)
    parser.add_argument("--files", type=int, default=40)
    parser.add_argument("--redundancy", type=float, default=2.5, help="SALAD Lambda")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scan", type=str, default=None, help="scan a real directory")
    args = parser.parse_args()

    corpus = build_corpus(args)
    summary = corpus.summary()
    print(
        f"corpus: {summary.machine_count} machines, {summary.total_files:,} files, "
        f"{format_bytes(summary.total_bytes)}"
    )
    print(
        f"  duplicate bytes: {summary.duplicate_byte_fraction:.1%} "
        f"(paper measured 46% across 585 desktops)"
    )

    run = DfcRun(corpus, DfcConfig(target_redundancy=args.redundancy, seed=args.seed))
    start = time.time()
    print(f"\ngrowing a SALAD of {len(corpus)} leaves (Lambda={args.redundancy}, D=2)...")
    run.build()
    print(f"  built in {time.time() - start:.1f}s; inserting fingerprint records...")
    inserted = run.insert_all()
    print(f"  {inserted:,} records inserted, {run.salad.network.messages_sent:,} messages total")

    reclaimed = run.reclaimed_fraction()
    ideal = summary.duplicate_byte_fraction
    print(f"\nspace reclaimed through DFC: {reclaimed:.1%} of all consumed space")
    print(f"omniscient deduplicator:     {ideal:.1%}")
    if ideal > 0:
        print(f"DFC efficiency:              {reclaimed / ideal:.1%} of ideal")
    print(
        f"consumed space: {format_bytes(summary.total_bytes)} -> "
        f"{format_bytes(run.consumed_bytes())}"
    )


if __name__ == "__main__":
    main()
