#!/usr/bin/env python
"""Block-level convergent deduplication (extension; paper section 5 + [28]).

The paper's scanner hashed 64-KB blocks and its related work cites LBFS,
which deduplicates identical *portions* of files.  This example applies
convergent encryption per block to a family of versioned documents and
shows the three granularities side by side:

- whole-file (the paper's DFC): any edit defeats coalescing;
- fixed 64-KB-style blocks: unedited aligned blocks coalesce;
- content-defined chunks (LBFS): even insertions leave most chunks shared.

Run:  python examples/block_dedup.py
"""

from repro.analysis.reporting import format_bytes
from repro.core.blocks import (
    decrypt_blocks,
    deduplicated_bytes,
    encrypt_blocks,
    split_content_defined,
    split_fixed,
)
from repro.core.fingerprint import fingerprint_of
from repro.workload.content import synthetic_content


def main() -> None:
    base = synthetic_content(1, 512 * 1024)
    versions = [
        base,
        # overwrite in place
        base[:100_000] + b"EDITED PARAGRAPH " * 100 + base[101_700:],
        # insertion near the front: shifts every downstream byte
        base[:5_000] + b"NEW INTRODUCTION " * 64 + base[5_000:],
        # append at the end
        base + b"APPENDED CHANGELOG ENTRY\n" * 40,
    ]
    logical = sum(len(v) for v in versions)
    print(f"4 versions of a {format_bytes(len(base))} document, "
          f"{format_bytes(logical)} logical\n")

    # Whole-file: distinct fingerprints each cost full size.
    distinct = {}
    for v in versions:
        distinct.setdefault(fingerprint_of(v), len(v))
    whole = sum(distinct.values())
    print(f"whole-file coalescing:      {format_bytes(whole)} "
          f"({1 - whole/logical:.0%} reclaimed)")

    # Fixed blocks.
    manifests = [encrypt_blocks(split_fixed(v, 32 * 1024))[0] for v in versions]
    _, fixed = deduplicated_bytes(manifests)
    print(f"fixed 32K blocks:           {format_bytes(fixed)} "
          f"({1 - fixed/logical:.0%} reclaimed)")

    # Content-defined chunks.
    manifests = [
        encrypt_blocks(split_content_defined(v, target_size=8 * 1024))[0]
        for v in versions
    ]
    _, cdc = deduplicated_bytes(manifests)
    print(f"content-defined chunks:     {format_bytes(cdc)} "
          f"({1 - cdc/logical:.0%} reclaimed)")

    # Prove the encrypted store still reconstructs every version exactly.
    store = {}
    recipes = []
    for v in versions:
        manifest, encrypted = encrypt_blocks(split_content_defined(v, 8 * 1024))
        for block in encrypted:
            store[block.fingerprint] = block.ciphertext
        recipes.append(manifest)
    ok = all(decrypt_blocks(m, store) == v for m, v in zip(recipes, versions))
    print(f"\nall versions reconstruct from the shared encrypted store: {ok}")
    print("(each block was encrypted with the hash of its own plaintext --")
    print(" convergent encryption, applied per block instead of per file)")


if __name__ == "__main__":
    main()
