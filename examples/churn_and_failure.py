#!/usr/bin/env python
"""Churn and failure: SALAD maintenance under an unreliable substrate.

Exercises the maintenance protocols of paper sections 4.4-4.6:

1. leaves join incrementally (Fig. 5 protocol) and the system re-estimates
   its size, stepping the cell-ID width W;
2. leaves depart cleanly (departure messages) and by silent crash (their
   entries time out via refresh);
3. duplicate discovery keeps working while machines are down half the time
   (the Fig. 8 duty-cycle failure model).

Run:  python examples/churn_and_failure.py
"""

import random

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad import Salad, SaladConfig
from repro.salad.records import SaladRecord


def main() -> None:
    salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=3))
    rng = random.Random(9)

    print("phase 1: growth (section 4.4 joins)")
    for target in (10, 40, 120):
        salad.build(target)
        sizes = salad.leaf_table_sizes()
        print(
            f"  L={len(salad.alive_leaves()):4d}  widths={salad.width_distribution()}"
            f"  mean leaf table={sum(sizes) / len(sizes):.1f}"
        )

    print("\nphase 2: departures (section 4.5)")
    leaves = salad.alive_leaves()
    for leaf in rng.sample(leaves, 15):
        leaf.depart_cleanly()
    salad.network.run()
    print(f"  15 leaves departed cleanly; alive={len(salad.alive_leaves())}")

    # Silent crashes: stale entries are flushed by refresh timeout.
    crashed = rng.sample(salad.alive_leaves(), 10)
    for leaf in crashed:
        leaf.fail()
    # Everyone sends a refresh round; dead leaves answer nothing.
    for leaf in salad.alive_leaves():
        leaf.send_refreshes()
    salad.network.run()
    flushed = 0
    for leaf in salad.alive_leaves():
        flushed += leaf.flush_stale_entries(timeout=0.5)
    print(f"  10 leaves crashed silently; {flushed} stale table entries flushed")

    print("\nphase 3: duplicate discovery at 50% machine downtime (Fig. 8 model)")
    salad.network.loss_probability = 0.5
    survivors = salad.alive_leaves()
    groups = 40
    copies_per_group = 6
    expected_pairs = 0
    batches = {}
    for g in range(groups):
        fingerprint = synthetic_fingerprint(64_000 + g, 500_000 + g)
        holders = rng.sample(survivors, copies_per_group)
        expected_pairs += copies_per_group - 1
        for leaf in holders:
            batches.setdefault(leaf.identifier, []).append(
                SaladRecord(fingerprint, leaf.identifier)
            )
    salad.insert_records(batches)

    discovered = {(p.fingerprint, m, p.other_machine) for m, p in salad.collected_matches()}
    found_groups = {fp for fp, _, _ in discovered}
    print(f"  {groups} duplicate groups x {copies_per_group} copies inserted")
    print(f"  groups with at least one discovered duplicate: {len(found_groups)}/{groups}")
    print("  -> even at 50% downtime, most duplicates are still found;")
    print("     redundancy (Lambda) absorbs the loss, exactly the paper's point.")


if __name__ == "__main__":
    main()
