#!/usr/bin/env python
"""Quickstart: convergent encryption + SALAD in five minutes.

1. Two users encrypt the same document with different keys; the ciphertexts
   are identical, so an untrusted host can tell the files are duplicates
   without reading either.
2. A 100-machine SALAD is grown by incremental joins and duplicate files are
   discovered with no central coordination.

Run:  python examples/quickstart.py
"""

import random

from repro.core import UserDirectory, convergent_decrypt, convergent_encrypt
from repro.core.fingerprint import fingerprint_of, synthetic_fingerprint
from repro.salad import Salad, SaladConfig
from repro.salad.records import SaladRecord


def demo_convergent_encryption() -> None:
    print("=== Convergent encryption (paper section 3) ===")
    users = UserDirectory()
    alice = users.create_user("alice", rng=random.Random(1))
    bob = users.create_user("bob", rng=random.Random(2))

    document = b"Meeting notes: the Q3 launch slips two weeks.\n" * 40

    # Each user encrypts independently, under their own key.
    ciphertext_a = convergent_encrypt(document, {"alice": alice.public_key})
    ciphertext_b = convergent_encrypt(document, {"bob": bob.public_key})

    print(f"  data ciphertexts identical: {ciphertext_a.data == ciphertext_b.data}")
    print(f"  key metadata identical:     {dict(ciphertext_a.metadata) == dict(ciphertext_b.metadata)}")
    print(f"  alice decrypts hers:        {convergent_decrypt(ciphertext_a, alice) == document}")
    print(f"  bob decrypts his:           {convergent_decrypt(ciphertext_b, bob) == document}")
    print(f"  shared fingerprint:         {fingerprint_of(ciphertext_a.data)!r}")
    print("  -> a storage host can coalesce both files into one blob, keys unseen.\n")


def demo_salad() -> None:
    print("=== SALAD duplicate discovery (paper section 4) ===")
    salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=7))
    salad.build(100)  # grown from a singleton by section 4.4 joins
    print(f"  built {len(salad)} leaves; widths in use: {salad.width_distribution()}")

    # Three machines hold the same content; each publishes a record.
    leaves = salad.alive_leaves()[:3]
    fingerprint = synthetic_fingerprint(size=300_000, content_id=42)
    salad.insert_records(
        {leaf.identifier: [SaladRecord(fingerprint, leaf.identifier)] for leaf in leaves}
    )

    matches = salad.collected_matches()
    print(f"  duplicate notifications delivered: {len(matches)}")
    notified = sorted({machine & 0xFFFF for machine, _ in matches})
    print(f"  machines notified (low 16 id bits): {[hex(m) for m in notified]}")
    print("  -> each holder learned its file exists elsewhere; relocation + SIS")
    print("     would now coalesce the three copies into one.\n")


if __name__ == "__main__":
    demo_convergent_encryption()
    demo_salad()
