#!/usr/bin/env python
"""The full Farsite write/read/coalesce pipeline (paper sections 2-3).

A small Farsite deployment: machine identities from public-key hashes,
quorum-replicated directory groups (one Byzantine member included), file
hosts with Single-Instance Stores, and clients writing through convergent
encryption.  A workgroup of users each stores their own copy of shared
documents; the hosts coalesce every copy while each user keeps independent
read access -- and an attacker holding a host sees only ciphertext.

Run:  python examples/encrypted_storage.py
"""

import random

from repro.analysis.reporting import format_bytes
from repro.core.keyring import UserDirectory
from repro.farsite import (
    DirectoryGroup,
    FarsiteClient,
    FileHost,
    MachineIdentity,
    Namespace,
)


def main() -> None:
    rng = random.Random(4)

    print("setting up 8 machines (identities = hashes of their public keys)...")
    machines = [MachineIdentity(rng=rng) for _ in range(8)]
    certificate = machines[0].certificate()
    print(f"  example identity {machines[0].identifier:#042x}")
    print(f"  self-signed certificate verifies: {certificate.verify()}")

    hosts = {m.identifier: FileHost(m.identifier) for m in machines}
    group = DirectoryGroup([m.identifier for m in machines[:4]], fault_tolerance=1)
    group.corrupt_member(machines[0].identifier)  # one Byzantine member
    namespace = Namespace([group])
    print("  directory group: 4 members, 1 Byzantine (quorum 3 outvotes it)")

    users = UserDirectory()
    workgroup = [users.create_user(name, rng=rng) for name in ("ana", "ben", "cho", "dee")]

    # Everyone stores a personal copy of the same two shared documents on
    # the same host set (relocation would arrange this; here we shortcut).
    handbook = b"EMPLOYEE HANDBOOK v7\n" + b"policy text\n" * 2000
    deck = b"ALL-HANDS DECK\n" + b"slide bytes\n" * 5000
    replica_hosts = [m.identifier for m in machines[:3]]

    print("\neach of 4 users writes private copies of 2 shared documents...")
    for user in workgroup:
        client = FarsiteClient(user, users, namespace, hosts, rng=random.Random(user.name))
        for doc_name, body in (("handbook.txt", handbook), ("allhands.ppt", deck)):
            receipt = client.write_file(
                f"/home/{user.name}/{doc_name}", body, replica_hosts=replica_hosts
            )
            tag = "coalesced" if receipt.coalesced_on else "first copy"
            print(f"  {receipt.path:28s} -> {len(receipt.replica_hosts)} replicas ({tag})")

    host = hosts[replica_hosts[0]]
    stats = host.sis.stats()
    print(
        f"\none host's Single-Instance Store: {len(host)} logical files, "
        f"{host.sis.blob_count()} physical blobs"
    )
    print(
        f"  logical {format_bytes(stats.logical_bytes)} -> physical "
        f"{format_bytes(stats.physical_bytes)} "
        f"(reclaimed {format_bytes(stats.reclaimed_bytes)})"
    )

    print("\nevery user still reads their own copy with their own key:")
    for user in workgroup:
        client = FarsiteClient(user, users, namespace, hosts, rng=random.Random(13))
        body = client.read_file(f"/home/{user.name}/handbook.txt")
        print(f"  {user.name}: read {len(body)} bytes ok={body == handbook}")

    # Copy-on-write: one user edits; nobody else is disturbed.
    editor = workgroup[0]
    client = FarsiteClient(editor, users, namespace, hosts, rng=random.Random(14))
    client.write_file(
        f"/home/{editor.name}/handbook.txt",
        handbook + b"\nana's margin notes",
        replica_hosts=replica_hosts,
    )
    reader = workgroup[1]
    client_b = FarsiteClient(reader, users, namespace, hosts, rng=random.Random(15))
    untouched = client_b.read_file(f"/home/{reader.name}/handbook.txt") == handbook
    print(f"\nafter ana edits her copy, ben's copy is untouched: {untouched}")
    print(f"host now stores {hosts[replica_hosts[0]].sis.blob_count()} blobs (copy-on-write split)")


if __name__ == "__main__":
    main()
