#!/usr/bin/env python
"""Targeted attack on SALAD (paper section 4.7).

A coalition of sybil leaves crafts identifiers vector-aligned with a victim
leaf, inflating its leaf table and therefore its system-size estimate; the
victim adopts an oversized cell-ID width and its records get lossier.  The
paper's Eq. 20 bounds the damage:

    lambda' = lambda * (1 - m/L)^D

This example mounts the attack and shows (a) the victim's width inflation,
(b) the measured drop in its records' redundancy, and (c) that the attack is
"fairly weak": the rest of the system is unaffected, and no fingerprint
range is captured.

Run:  python examples/targeted_attack.py
"""

import random

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad import Salad, SaladConfig
from repro.salad.attack import craft_attack_identifiers, measure_record_redundancy
from repro.salad.model import actual_redundancy, attacked_redundancy
from repro.salad.records import SaladRecord


def victim_records(victim_id: int, count: int, tag: int):
    return [
        SaladRecord(synthetic_fingerprint(10_000 + i, tag + i), victim_id)
        for i in range(count)
    ]


def main() -> None:
    system_size = 200
    sybils = 60
    rng = random.Random(11)

    salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=5))
    salad.build(system_size)
    victim = salad.alive_leaves()[0]
    bystander = salad.alive_leaves()[1]
    print(f"SALAD of {system_size} leaves; victim width W={victim.width}")

    before = victim_records(victim.identifier, 200, 1_000_000)
    salad.insert_records({victim.identifier: before})
    base = measure_record_redundancy(salad, before)
    print(f"victim record redundancy before attack: {base:.2f}")

    print(f"\n{sybils} sybils join with identifiers vector-aligned to the victim,")
    print("then silently drop all service (stale entries inflate the victim's table)...")
    sybil_leaves = []
    for identifier in craft_attack_identifiers(
        victim.identifier, victim.width, 2, sybils, rng
    ):
        if identifier not in salad.leaves:
            sybil_leaves.append(salad.add_leaf(identifier=identifier))
    for sybil in sybil_leaves:
        sybil.fail()
    print(
        f"victim: width W={victim.width}, leaf table={victim.table_size} entries, "
        f"estimated L={victim.estimated_system_size:.0f} (true {len(salad)})"
    )

    after = victim_records(victim.identifier, 200, 2_000_000)
    salad.insert_records({victim.identifier: after})
    measured = measure_record_redundancy(salad, after)
    lam = actual_redundancy(len(salad), 2.5)
    bound = attacked_redundancy(lam, sybils, len(salad), 2)
    print(f"\nvictim record redundancy after attack:  {measured:.2f}")
    print(f"Eq. 20 prediction:                      {bound:.2f}")

    # The attack does not spill onto bystanders.
    bystander_records = victim_records(bystander.identifier, 200, 3_000_000)
    salad.insert_records({bystander.identifier: bystander_records})
    unaffected = measure_record_redundancy(salad, bystander_records)
    print(f"bystander record redundancy:            {unaffected:.2f}")
    print(
        "\n-> the attack degrades one victim's redundancy, cannot capture a"
        "\n   fingerprint range, and leaves the rest of the SALAD untouched --"
        "\n   the section 4.7 claim."
    )


if __name__ == "__main__":
    main()
